"""Synthetic surrogate of the Intel Berkeley Lab temperature trace
(paper §5, Figure 9).

The real trace (54 motes, temperature per epoch) is not redistributable
offline, so this module generates a surrogate engineered to preserve
the property that drives the paper's Figure-9 result: *the locations of
the top values are fairly predictable* — warm spots in the lab stay
warm — which makes LP−LF match LP+LF and lets both beat Greedy.

Construction:
- 54 motes laid out on a lab-like floor plan (a jittered grid in a
  40m x 30m rectangle, root at the lab entrance corner);
- a static spatial temperature field: baseline plus two warm regions
  (a strong "server corner" and a comparable "kitchen corner" hot
  spot, so top-count nodes interleave across distant subtrees) and a
  mild window-facing gradient;
- a shared diurnal sinusoid (epochs are ~31s in the original data; we
  model a compressed day) plus small per-node AR(1) noise;
- values go missing independently with a configurable probability and
  are filled with the average of the node's prior and next readings —
  exactly the paper's repair rule.

As in the paper, the spanning tree uses a deliberately short radio
range (the paper forces 6m on the real floor plan; our jittered grid
needs 8m for connectivity) to force hierarchy on the small floor plan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.trace import Trace
from repro.errors import TraceError
from repro.network.builder import _min_hop_tree
from repro.network.topology import Topology

NUM_MOTES = 54
LAB_WIDTH = 40.0
LAB_HEIGHT = 30.0
RADIO_RANGE = 8.0


def _mote_positions(rng: np.random.Generator) -> list[tuple[float, float]]:
    """54 motes: jittered 9x6 grid filling the lab rectangle."""
    cols, rows = 9, 6
    positions: list[tuple[float, float]] = []
    for index in range(NUM_MOTES):
        col = index % cols
        row = index // cols
        x = (col + 0.5) * LAB_WIDTH / cols + rng.uniform(-1.0, 1.0)
        y = (row + 0.5) * LAB_HEIGHT / rows + rng.uniform(-1.0, 1.0)
        positions.append((float(np.clip(x, 0, LAB_WIDTH)),
                          float(np.clip(y, 0, LAB_HEIGHT))))
    # the root (query station) sits at the entrance corner
    positions[0] = (1.0, 1.0)
    return positions


def intel_lab_network(rng: np.random.Generator | None = None) -> Topology:
    """The surrogate lab topology (54 motes, short radio range)."""
    rng = rng or np.random.default_rng(2006)
    for __ in range(50):
        positions = _mote_positions(rng)
        parents = _min_hop_tree(positions, RADIO_RANGE)
        if parents is not None:
            return Topology(parents, positions=positions)
    raise TraceError("could not connect the lab surrogate network")


@dataclass
class IntelLabSurrogate:
    """Generator for the surrogate temperature trace.

    Parameters
    ----------
    missing_probability:
        Chance that any single reading is lost (then repaired with the
        neighbour-epoch average, as the paper does).
    epochs_per_day:
        Length of the diurnal cycle in epochs.
    """

    missing_probability: float = 0.03
    epochs_per_day: int = 96
    baseline_c: float = 19.0
    hotspot_c: float = 6.0
    second_hotspot_c: float = 5.9
    window_gradient_c: float = 0.5
    diurnal_amplitude_c: float = 2.5
    noise_std_c: float = 0.6
    ar_coefficient: float = 0.7

    def __post_init__(self) -> None:
        if not 0.0 <= self.missing_probability < 1.0:
            raise TraceError("missing_probability must be in [0, 1)")
        if self.epochs_per_day < 2:
            raise TraceError("epochs_per_day must be >= 2")

    def static_field(self, topology: Topology) -> np.ndarray:
        """Per-mote baseline temperature from the spatial layout."""
        if topology.positions is None:
            raise TraceError("lab topology needs positions")
        temps = np.empty(topology.n)
        hot_x, hot_y = LAB_WIDTH * 0.9, LAB_HEIGHT * 0.85  # server corner
        kit_x, kit_y = LAB_WIDTH * 0.1, LAB_HEIGHT * 0.8   # kitchen corner
        for node, (x, y) in enumerate(topology.positions):
            hot = self.hotspot_c * np.exp(
                -(((x - hot_x) ** 2 + (y - hot_y) ** 2) / (2 * 8.0**2))
            )
            kitchen = self.second_hotspot_c * np.exp(
                -(((x - kit_x) ** 2 + (y - kit_y) ** 2) / (2 * 6.0**2))
            )
            window = self.window_gradient_c * (x / LAB_WIDTH)
            temps[node] = self.baseline_c + hot + kitchen + window
        return temps

    def generate(
        self,
        topology: Topology,
        epochs: int,
        rng: np.random.Generator,
    ) -> Trace:
        """A trace of the given length, with missing values repaired."""
        if epochs < 3:
            raise TraceError("need at least 3 epochs to repair missing values")
        n = topology.n
        base = self.static_field(topology)
        values = np.empty((epochs, n))
        noise = np.zeros(n)
        for epoch in range(epochs):
            phase = 2 * np.pi * epoch / self.epochs_per_day
            diurnal = self.diurnal_amplitude_c * np.sin(phase - np.pi / 2)
            noise = self.ar_coefficient * noise + rng.normal(
                0.0, self.noise_std_c, size=n
            )
            values[epoch] = base + diurnal + noise

        if self.missing_probability > 0:
            missing = rng.random(values.shape) < self.missing_probability
            # interior epochs: average of prior and next reading; edge
            # epochs copy their single neighbour (paper's rule extended
            # to the trace boundaries)
            repaired = values.copy()
            for epoch in range(epochs):
                prev_epoch = max(0, epoch - 1)
                next_epoch = min(epochs - 1, epoch + 1)
                fill = 0.5 * (values[prev_epoch] + values[next_epoch])
                repaired[epoch, missing[epoch]] = fill[missing[epoch]]
            values = repaired
        return Trace(values)
