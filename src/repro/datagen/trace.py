"""Epoch traces of network-wide readings."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.sampling.matrix import SampleMatrix


@dataclass(frozen=True)
class Trace:
    """A sequence of full-network readings, one row per epoch.

    The standard experimental split (paper §5, Intel Lab experiment)
    uses the first ``t`` epochs as training samples and queries the
    rest; :meth:`split` implements that.
    """

    values: np.ndarray  # shape (epochs, nodes)

    def __post_init__(self) -> None:
        if self.values.ndim != 2 or self.values.shape[0] == 0:
            raise TraceError(f"trace must be (epochs, nodes), got {self.values.shape}")

    @property
    def num_epochs(self) -> int:
        return int(self.values.shape[0])

    @property
    def num_nodes(self) -> int:
        return int(self.values.shape[1])

    def epoch(self, index: int) -> np.ndarray:
        """Readings of one epoch (raises TraceError when out of range)."""
        if not 0 <= index < self.num_epochs:
            raise TraceError(f"epoch {index} out of range [0, {self.num_epochs})")
        return self.values[index]

    def split(self, training_epochs: int) -> tuple["Trace", "Trace"]:
        """(training, evaluation) traces; both must be non-empty."""
        if not 0 < training_epochs < self.num_epochs:
            raise TraceError(
                f"training_epochs must be in (0, {self.num_epochs}),"
                f" got {training_epochs}"
            )
        return (
            Trace(self.values[:training_epochs]),
            Trace(self.values[training_epochs:]),
        )

    def sample_matrix(self, k: int) -> SampleMatrix:
        """Digest the whole trace into a sample matrix."""
        return SampleMatrix(self.values, k)

    def __iter__(self):
        return iter(self.values)

    def __len__(self) -> int:
        return self.num_epochs
