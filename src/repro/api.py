"""The stable public API facade.

Everything here is covered by the compatibility promise documented in
the README ("Supported API"): signatures only gain keyword arguments,
and behaviour changes announce themselves with
``DeprecationWarning`` for one release first.  The facade has two
halves:

**Service half** — multi-tenant, session-based (the deployment shape):

>>> import repro.api as api
>>> client = api.connect()                     # private in-process service
>>> tid = client.register_topology([-1, 0, 0, 1, 1])
>>> session = api.open_session(client, tid, k=2, budget_mj=40.0)
>>> session.feed([1.0, 9.0, 3.0, 7.0, 2.0])
SampleAccepted(session_id='s0001', window_size=1)
>>> reply = api.submit_query(session, [1.0, 9.0, 3.0, 7.0, 2.0])
>>> sorted(reply.nodes) == [1, 3]
True

**Library half** — direct, single-call planning and simulation:

:func:`plan` runs one PROSPECTOR planner over a sample window and
:func:`simulate` executes the result against live readings; both are
thin compositions of the long-stable lower layers
(:class:`~repro.planners.base.PlanningContext`,
:class:`~repro.simulation.runtime.Simulator`) with the keyword-only
construction style the rest of the codebase converged on.
"""

from __future__ import annotations

import numpy as np

from repro.network.energy import EnergyModel
from repro.network.topology import Topology
from repro.planners.base import PlanningContext
from repro.planners.greedy import GreedyPlanner
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.planners.proof import ProofPlanner
from repro.sampling.matrix import SampleMatrix
from repro.service.client import (
    InProcessClient,
    SessionHandle,
    SocketClient,
    connect,
)
from repro.service.messages import QueryReply
from repro.service.server import ServiceConfig, ServiceThread, TopKService
from repro.service.shard import ShardedClient, ShardedService
from repro.simulation.runtime import SimulationReport, Simulator

__all__ = [
    "InProcessClient",
    "ServiceConfig",
    "ServiceThread",
    "SessionHandle",
    "ShardedClient",
    "ShardedService",
    "SocketClient",
    "TopKService",
    "connect",
    "open_session",
    "plan",
    "simulate",
    "submit_query",
]

_PLANNERS = {
    "greedy": GreedyPlanner,
    "lp-lf": LPLFPlanner,
    "lp-no-lf": LPNoLFPlanner,
    "proof": ProofPlanner,
}


def open_session(
    client,
    topology,
    k: int,
    *,
    planner: str = "lp-lf",
    budget_mj: float = 500.0,
    window_capacity: int = 25,
    replan_every: int = 10,
    track_truth: bool = True,
) -> SessionHandle:
    """Open one tenant session on a client from :func:`connect`.

    ``topology`` is a registered topology id, a
    :class:`~repro.network.topology.Topology`, or a parents vector —
    the latter two are registered (idempotently) first.
    """
    if isinstance(topology, str):
        topology_id = topology
    else:
        topology_id = client.register_topology(topology)
    return client.open_session(
        topology_id,
        k,
        planner=planner,
        budget_mj=budget_mj,
        window_capacity=window_capacity,
        replan_every=replan_every,
        track_truth=track_truth,
    )


def submit_query(session: SessionHandle, readings) -> QueryReply:
    """Execute the session's installed plan on this epoch's readings."""
    return session.query(readings)


def plan(
    topology: Topology,
    energy: EnergyModel,
    samples,
    k: int,
    budget_mj: float,
    *,
    planner: str = "lp-lf",
    instrumentation=None,
):
    """One-shot planning: samples in, :class:`~repro.plans.plan.QueryPlan` out.

    ``samples`` is an ``(m, n)`` array of past full-network readings
    (or a ready :class:`~repro.sampling.matrix.SampleMatrix`);
    ``planner`` is one of ``greedy``, ``lp-lf``, ``lp-no-lf``,
    ``proof``.
    """
    try:
        planner_cls = _PLANNERS[planner]
    except KeyError:
        raise ValueError(
            f"unknown planner {planner!r}; available:"
            f" {', '.join(sorted(_PLANNERS))}"
        ) from None
    if not isinstance(samples, SampleMatrix):
        samples = SampleMatrix(np.asarray(samples, dtype=float), k=k)
    context = PlanningContext(
        topology=topology,
        energy=energy,
        samples=samples,
        k=k,
        budget=float(budget_mj),
        instrumentation=instrumentation,
    )
    return planner_cls().plan(context)


def simulate(
    topology: Topology,
    energy: EnergyModel,
    query_plan,
    readings,
    *,
    failures=None,
    rng=None,
    instrumentation=None,
    ledger=None,
) -> SimulationReport:
    """Execute ``query_plan`` once on ``readings``, with full energy
    accounting (and optional failure injection / observability)."""
    simulator = Simulator(
        topology,
        energy,
        failures=failures,
        rng=rng,
        instrumentation=instrumentation,
        ledger=ledger,
    )
    return simulator.run_collection(query_plan, readings)
