"""Cluster top-k queries (paper §1).

"...the researchers might want to group nearby feeders into clusters
for purposes of observation, and obtain the top clusters ordered by
average bird count.  Nevertheless, the basic form of the query remains
top-k."

A :class:`ClusterTopKQuery` partitions (a subset of) the nodes into
named clusters, scores each cluster by the mean of its members'
readings, and declares the members of the ``k`` best clusters the
contributing nodes — every member's value is needed to compute its
cluster's average.  Because whole clusters contribute or not together,
the sample matrix exhibits exactly the subtree-level patterns (§3) the
LP planners exploit.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import PlanError
from repro.plans.plan import Reading
from repro.queries.base import QuerySpec


class ClusterTopKQuery(QuerySpec):
    """Top-k clusters by mean member reading.

    Parameters
    ----------
    clusters:
        ``{cluster_name: member node ids}``; clusters must be disjoint
        and non-empty.  Nodes outside every cluster never contribute.
    k:
        How many clusters to return.
    """

    name = "cluster-top-k"
    up_closed = False  # a small value in a strong cluster still matters

    def __init__(
        self, clusters: Mapping[str, Sequence[int]], k: int
    ) -> None:
        if k < 1:
            raise PlanError("k must be >= 1")
        if not clusters:
            raise PlanError("at least one cluster is required")
        if k > len(clusters):
            raise PlanError(
                f"k={k} exceeds the number of clusters ({len(clusters)})"
            )
        self.k = k
        self.clusters: dict[str, tuple[int, ...]] = {}
        seen: set[int] = set()
        for name, members in clusters.items():
            members = tuple(members)
            if not members:
                raise PlanError(f"cluster {name!r} is empty")
            overlap = seen & set(members)
            if overlap:
                raise PlanError(
                    f"clusters must be disjoint; {sorted(overlap)} repeated"
                )
            seen |= set(members)
            self.clusters[name] = members

    # -- scoring ----------------------------------------------------------
    def cluster_scores(self, readings) -> dict[str, float]:
        """Mean reading per cluster."""
        values = np.asarray(readings, dtype=float)
        return {
            name: float(values[list(members)].mean())
            for name, members in self.clusters.items()
        }

    def top_clusters(self, readings) -> list[str]:
        """The k best cluster names (score desc, name asc on ties)."""
        scores = self.cluster_scores(readings)
        ranked = sorted(scores, key=lambda name: (-scores[name], name))
        return ranked[: self.k]

    def answer_nodes(self, readings) -> frozenset[int]:
        winners = self.top_clusters(readings)
        return frozenset(
            node for name in winners for node in self.clusters[name]
        )

    # -- execution support -------------------------------------------------
    def forward_priority(self, samples=None):
        """Order readings by their cluster's historical strength.

        Members of clusters that scored well in the samples are
        forwarded first; non-members last.  (A cluster average needs
        *all* members, so value order alone would starve the weak
        members of strong clusters.)
        """
        if samples is None:
            raise PlanError(
                "cluster execution needs samples to rank clusters"
            )
        rows = np.asarray(list(samples), dtype=float)
        if rows.size == 0:
            raise PlanError("need at least one sample row")
        mean_scores = {
            name: float(rows[:, list(members)].mean())
            for name, members in self.clusters.items()
        }
        cluster_of = {
            node: name
            for name, members in self.clusters.items()
            for node in members
        }
        floor = min(mean_scores.values()) - 1.0

        def priority(reading: Reading):
            value, node = reading
            name = cluster_of.get(node)
            score = mean_scores[name] if name is not None else floor
            return (score, value, node)

        return priority

    def answered_clusters(self, returned_nodes) -> list[str]:
        """Clusters whose members were fully delivered (answerable)."""
        delivered = set(returned_nodes)
        return [
            name
            for name, members in self.clusters.items()
            if set(members) <= delivered
        ]


def plan_whole_clusters(
    spec: ClusterTopKQuery,
    topology,
    energy,
    samples,
    budget: float,
    failures=None,
):
    """A cluster-aware planner: deliver *complete* clusters or nothing.

    A cluster average needs every member, so the generic per-node LP —
    which happily delivers 15 of 16 members — wastes budget on
    unanswerable clusters.  This planner instead ranks clusters by
    their historical mean score and greedily admits whole clusters
    (all member paths, full bandwidth) while the plan fits the budget.
    At least ``spec.k`` admitted clusters are attempted; fewer fit only
    if the budget forbids them.
    """
    import numpy as np

    from repro.plans.plan import QueryPlan

    rows = np.asarray(list(samples), dtype=float)
    if rows.size == 0:
        raise PlanError("need at least one sample row")
    scores = {
        name: float(rows[:, list(members)].mean())
        for name, members in spec.clusters.items()
    }
    order = sorted(scores, key=lambda name: (-scores[name], name))

    def build(names) -> QueryPlan:
        chosen = {
            node for name in names for node in spec.clusters[name]
        }
        chosen.add(topology.root)
        return QueryPlan.from_chosen_nodes(topology, chosen)

    def cost(plan) -> float:
        base = plan.static_cost(energy, failures)
        if energy.acquisition_mj:
            base += energy.acquisition_mj * len(plan.visited_nodes)
        return base

    admitted: list[str] = []
    plan = build(admitted)
    for name in order:
        trial = build(admitted + [name])
        if cost(trial) <= budget:
            admitted.append(name)
            plan = trial
        if len(admitted) >= spec.k:
            break
    return plan, admitted
