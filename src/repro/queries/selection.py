"""Selection queries: return all readings above a threshold.

The classic acquisitional query ("return all readings greater than
sigma", paper §1).  Selection answers are up-closed in value order, so
standard sort-and-forward execution delivers them whenever bandwidth
allows, and the analytic tree recursion on delivered answers is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError
from repro.queries.base import QuerySpec


@dataclass(frozen=True)
class SelectionQuery(QuerySpec):
    """``SELECT nodes WHERE value > threshold``."""

    threshold: float
    name: str = "selection"
    up_closed: bool = True

    def answer_nodes(self, readings) -> frozenset[int]:
        return frozenset(
            node
            for node, value in enumerate(readings)
            if float(value) > self.threshold
        )

    def expected_answer_size(self, samples) -> float:
        """Average answer cardinality over sample rows (used to size
        bandwidth-related defaults)."""
        rows = list(samples)
        if not rows:
            raise PlanError("need at least one sample row")
        total = sum(len(self.answer_nodes(row)) for row in rows)
        return total / len(rows)
