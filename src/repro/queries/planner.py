"""Planning and running generalized subset queries.

:class:`SubsetQueryPlanner` is a thin adapter: it digests samples with
the query spec into an :class:`~repro.queries.matrix.AnswerMatrix` and
hands that to an unmodified PROSPECTOR planner — the paper's point that
the sampling+LP machinery carries over to any subset query.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SamplingError
from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.network.topology import Topology
from repro.planners.base import Planner, PlanningContext
from repro.planners.lp_lf import LPLFPlanner
from repro.plans.plan import QueryPlan, Reading
from repro.queries.base import QuerySpec
from repro.queries.matrix import AnswerMatrix
from repro.simulation.runtime import SimulationReport, Simulator


class SubsetQueryPlanner:
    """Plan any subset query with the PROSPECTOR machinery.

    Parameters
    ----------
    spec:
        The query (selection, quantile, top-k, ...).
    planner:
        The underlying PROSPECTOR; defaults to LP+LF.  PROSPECTOR-Proof
        is top-k-specific and not accepted here.
    """

    def __init__(self, spec: QuerySpec, planner: Planner | None = None) -> None:
        self.spec = spec
        self.planner = planner or LPLFPlanner()

    def plan(
        self,
        topology: Topology,
        energy: EnergyModel,
        sample_rows,
        budget: float,
        failures: LinkFailureModel | None = None,
    ) -> QueryPlan:
        """Optimize a plan for the spec from raw sample rows."""
        matrix = AnswerMatrix(sample_rows, self.spec)
        if matrix.max_answer_size() == 0:
            raise SamplingError(
                f"query {self.spec.name!r} never has a non-empty answer in"
                " the samples; nothing to plan for"
            )
        context = PlanningContext(
            topology=topology,
            energy=energy,
            samples=matrix,  # duck-typed: same surface as SampleMatrix
            k=matrix.max_answer_size(),
            budget=budget,
            failures=failures,
        )
        return self.planner.plan(context)


@dataclass
class SubsetQueryResult:
    """Outcome of one subset-query execution."""

    answer: list[Reading]
    recall: float
    report: SimulationReport


def run_subset_query(
    simulator: Simulator,
    plan: QueryPlan,
    spec: QuerySpec,
    readings,
    samples=None,
) -> SubsetQueryResult:
    """Execute ``plan`` for ``spec`` on one epoch and score the answer.

    The answer is the subset of root-delivered values satisfying the
    spec on the *delivered* evidence: for a selection query, delivered
    values above the threshold; for quantile/top-k, the delivered
    values whose nodes belong to the spec's answer over delivered data.
    Recall is measured against ground truth.
    """
    priority = spec.forward_priority(samples)
    report = simulator.run_collection(plan, readings, priority=priority)
    truth = spec.answer_nodes(readings)
    delivered_nodes = {node for __, node in report.returned}
    answer = [
        (value, node) for value, node in report.returned if node in truth
    ]
    recall = spec.recall(delivered_nodes, readings)
    return SubsetQueryResult(answer=answer, recall=recall, report=report)
