"""Query specifications: which nodes contribute to the answer.

A :class:`QuerySpec` turns a readings vector into the set of
contributing node ids — the generalized ``B[j, i] = 1`` rule of
paper §3 — and supplies the forwarding priority used during
sort-and-forward execution (descending value for *up-closed* queries
like top-k and selection, where anything outranking an answer value is
itself an answer value; target-distance for quantile neighborhoods).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import PlanError
from repro.plans.plan import Reading, tag_readings


class QuerySpec(ABC):
    """A subset query over one epoch of network readings."""

    name: str = "subset"

    up_closed: bool = True
    """True when any value outranking an answer value is itself in the
    answer (top-k, selection).  For up-closed specs the analytic tree
    recursion on delivered answers is exact; otherwise it is an upper
    bound and execution uses :meth:`forward_priority`."""

    @abstractmethod
    def answer_nodes(self, readings) -> frozenset[int]:
        """Node ids contributing to the answer for these readings."""

    def forward_priority(self, samples=None):
        """Return a key function ordering readings for forwarding.

        ``samples`` (recent sample rows) lets non-up-closed specs aim
        at an estimated target.  The default — plain value order — is
        correct for up-closed specs.
        """
        return None  # value order

    def answer_readings(self, readings) -> list[Reading]:
        """The answer as sorted ``(value, node)`` pairs."""
        nodes = self.answer_nodes(readings)
        tagged = tag_readings(readings)
        return sorted((tagged[n] for n in nodes), reverse=True)

    def recall(self, returned_nodes, readings) -> float:
        """Fraction of the true answer present in ``returned_nodes``.

        An empty true answer counts as fully answered (nothing to
        miss), which keeps selection queries well-defined on quiet
        epochs.
        """
        truth = self.answer_nodes(readings)
        if not truth:
            return 1.0
        return len(set(returned_nodes) & truth) / len(truth)


@dataclass(frozen=True)
class TopKQuery(QuerySpec):
    """The paper's core query, expressed as a subset spec."""

    k: int
    name: str = "top-k"
    up_closed: bool = True

    def __post_init__(self) -> None:
        if self.k < 1:
            raise PlanError("k must be >= 1")

    def answer_nodes(self, readings) -> frozenset[int]:
        tagged = sorted(tag_readings(readings), reverse=True)
        return frozenset(node for __, node in tagged[: self.k])
