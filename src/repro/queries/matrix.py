"""The generalized Boolean answer matrix (paper §3).

``B[j, i] = 1`` iff node ``i`` contributes to the answer of the
``j``-th sample under an arbitrary :class:`~repro.queries.base.QuerySpec`.
Exposes the same surface the PROSPECTOR LP formulations consume from
:class:`~repro.sampling.matrix.SampleMatrix` (``ones``, ``ones_list``,
``column_counts``, shapes), so the planners work on it unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.queries.base import QuerySpec


class AnswerMatrix:
    """Sample digests for an arbitrary subset query."""

    def __init__(self, samples, spec: QuerySpec) -> None:
        values = np.asarray(samples, dtype=float)
        if values.ndim != 2 or values.shape[0] == 0:
            raise SamplingError(
                f"samples must be a non-empty (m, n) array, got {values.shape}"
            )
        self.values = values
        self.spec = spec
        self._ones = [frozenset(spec.answer_nodes(row)) for row in values]
        self.matrix = np.zeros(values.shape, dtype=bool)
        for j, ones in enumerate(self._ones):
            for node in ones:
                self.matrix[j, node] = True

    @property
    def num_samples(self) -> int:
        return int(self.values.shape[0])

    @property
    def num_nodes(self) -> int:
        return int(self.values.shape[1])

    def ones(self, j: int) -> frozenset[int]:
        """Nodes contributing to the answer of sample ``j``."""
        return self._ones[j]

    def ones_list(self) -> list[frozenset[int]]:
        return list(self._ones)

    def column_counts(self) -> np.ndarray:
        """How often each node contributed across the samples."""
        return self.matrix.sum(axis=0).astype(int)

    def max_answer_size(self) -> int:
        """Largest per-sample answer (stands in for ``k`` where the
        planning context wants one)."""
        return max((len(ones) for ones in self._ones), default=0)

    def __repr__(self) -> str:
        return (
            f"AnswerMatrix(spec={self.spec.name!r}, m={self.num_samples},"
            f" n={self.num_nodes})"
        )
