"""Quantile-neighborhood queries.

A quantile query wants the value(s) around a rank — the median, the
90th percentile — rather than the extremes (paper §3 names quantile
queries as the other natural subset query; §6 discusses q-digest as
prior art).  The contributing nodes of sample ``j`` are those whose
readings rank within ``band`` positions of the target rank.

Quantile answers are *not* up-closed: larger values are not more
likely to be answers, so plain sort-and-forward would crowd the
quantile band out with maxima.  :meth:`QuantileQuery.forward_priority`
therefore orders readings by closeness to the target value estimated
from recent samples, which is what an installed plan's nodes would be
configured with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PlanError
from repro.plans.plan import tag_readings
from repro.queries.base import QuerySpec


@dataclass(frozen=True)
class QuantileQuery(QuerySpec):
    """Nodes ranking within ``band`` positions of the ``phi``-quantile.

    ``phi = 0.5, band = 1`` asks for the median reading and its two
    rank-neighbours.
    """

    phi: float
    band: int = 1
    name: str = "quantile"
    up_closed: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.phi <= 1.0:
            raise PlanError("phi must be within [0, 1]")
        if self.band < 0:
            raise PlanError("band must be non-negative")

    def target_rank(self, num_nodes: int) -> int:
        """Rank (0 = smallest) of the phi-quantile among n readings."""
        return min(num_nodes - 1, int(round(self.phi * (num_nodes - 1))))

    def answer_nodes(self, readings) -> frozenset[int]:
        tagged = sorted(tag_readings(readings))  # ascending
        rank = self.target_rank(len(tagged))
        low = max(0, rank - self.band)
        high = min(len(tagged), rank + self.band + 1)
        return frozenset(node for __, node in tagged[low:high])

    def estimate_target_value(self, samples) -> float:
        """The phi-quantile value estimated from sample rows."""
        rows = np.asarray(list(samples), dtype=float)
        if rows.size == 0:
            raise PlanError("need at least one sample row")
        return float(np.quantile(rows, self.phi))

    def forward_priority(self, samples=None):
        """Forward the readings nearest the estimated target value."""
        if samples is None:
            raise PlanError(
                "quantile execution needs samples to estimate its target"
            )
        target = self.estimate_target_value(samples)

        def priority(reading):
            value, node = reading
            return (-abs(value - target), node)

        return priority
