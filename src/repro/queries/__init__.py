"""Generalized subset queries (paper §3).

"Note that this approach can be easily generalized to queries that
return subsets of all sensor values, e.g., selection and quantile
queries.  In the general case, we would set B[j, i] = 1 if node i
contributes to the answer in the j-th sample ... The optimization goal
would still be to minimize the total number of 1's in B missed by the
plan."

This subpackage implements that generalization: a
:class:`~repro.queries.base.QuerySpec` defines which nodes contribute
to a query's answer, :class:`~repro.queries.matrix.AnswerMatrix`
digests samples into the generalized Boolean matrix, and
:class:`~repro.queries.planner.SubsetQueryPlanner` reuses the
PROSPECTOR LP machinery unchanged on top of it.  Concrete specs:
top-k (for symmetry), selection (``value > threshold``), and quantile
neighborhoods.
"""

from repro.queries.base import QuerySpec, TopKQuery
from repro.queries.clusters import ClusterTopKQuery, plan_whole_clusters
from repro.queries.matrix import AnswerMatrix
from repro.queries.planner import SubsetQueryPlanner, run_subset_query
from repro.queries.quantile import QuantileQuery
from repro.queries.selection import SelectionQuery

__all__ = [
    "AnswerMatrix",
    "ClusterTopKQuery",
    "QuantileQuery",
    "QuerySpec",
    "SelectionQuery",
    "SubsetQueryPlanner",
    "TopKQuery",
    "plan_whole_clusters",
    "run_subset_query",
]
