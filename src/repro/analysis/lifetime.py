"""Per-node energy burdens and network lifetime estimation.

The paper's very first motivation: "Because sensors are often
battery-powered, the lifetime of the network is tied to the rate at
which it consumes energy."  Total energy (what the planners optimize)
is a proxy; what actually kills a deployment is the *first* node to
exhaust its battery — typically a relay near the root, the classic
energy-hole effect.

This module splits every message's cost between its sender and receiver
(using the radio's send/receive power ratio), charges acquisition to
the measuring node, aggregates per-node burdens over a plan's
collection phase, and converts battery capacities into a lifetime in
collection rounds, identifying the bottleneck node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PlanError
from repro.network.energy import EnergyModel
from repro.network.topology import Topology
from repro.plans.execution import execute_plan
from repro.plans.plan import QueryPlan


@dataclass
class NodeBurden:
    """Energy one node spends in one collection round, by source."""

    node: int
    transmit_mj: float = 0.0
    receive_mj: float = 0.0
    acquisition_mj: float = 0.0

    @property
    def total_mj(self) -> float:
        return self.transmit_mj + self.receive_mj + self.acquisition_mj


@dataclass
class LifetimeReport:
    """Per-node burdens and the resulting network lifetime."""

    burdens: dict[int, NodeBurden]
    lifetime_rounds: float
    bottleneck_node: int
    battery_mj: float

    def hottest(self, count: int = 5) -> list[NodeBurden]:
        """The most burdened nodes, heaviest first."""
        return sorted(
            self.burdens.values(), key=lambda b: -b.total_mj
        )[:count]

    def rows(self) -> list[dict]:
        return [
            {
                "node": b.node,
                "tx_mj": b.transmit_mj,
                "rx_mj": b.receive_mj,
                "acq_mj": b.acquisition_mj,
                "total_mj": b.total_mj,
            }
            for b in self.hottest(len(self.burdens))
        ]


def _split_fractions(energy: EnergyModel) -> tuple[float, float]:
    """Sender/receiver shares of a message's cost, from radio powers."""
    total = energy.sending_mw + energy.receiving_mw
    if total <= 0:
        return 0.5, 0.5
    return energy.sending_mw / total, energy.receiving_mw / total


def node_burdens(
    plan: QueryPlan,
    energy: EnergyModel,
    sample_rows,
) -> dict[int, NodeBurden]:
    """Mean per-node energy of one collection round over sample rows.

    The plan is replayed on every row; each message's cost is split
    between the transmitting child and the receiving parent, and
    acquisition is charged to every visited node.
    """
    rows = np.asarray(list(sample_rows), dtype=float)
    if rows.size == 0:
        raise PlanError("need at least one sample row")
    topology = plan.topology
    tx_share, rx_share = _split_fractions(energy)
    burdens = {node: NodeBurden(node) for node in topology.nodes}

    for row in rows:
        result = execute_plan(plan, row)
        for message in result.messages:
            cost = message.cost(energy)
            sender = message.edge
            receiver = topology.parent(sender)
            burdens[sender].transmit_mj += tx_share * cost
            burdens[receiver].receive_mj += rx_share * cost
    scale = 1.0 / rows.shape[0]
    for burden in burdens.values():
        burden.transmit_mj *= scale
        burden.receive_mj *= scale
    if energy.acquisition_mj:
        for node in plan.visited_nodes:
            burdens[node].acquisition_mj = energy.acquisition_mj
    return burdens


def estimate_lifetime(
    plan: QueryPlan,
    energy: EnergyModel,
    sample_rows,
    battery_mj: float,
    exclude_root: bool = True,
) -> LifetimeReport:
    """Collection rounds until the first battery dies.

    ``exclude_root`` reflects the usual deployment where the query
    station is mains-powered; set False for fully battery-powered
    networks.
    """
    if battery_mj <= 0:
        raise PlanError("battery capacity must be positive")
    burdens = node_burdens(plan, energy, sample_rows)
    candidates = [
        b
        for b in burdens.values()
        if not (exclude_root and b.node == plan.topology.root)
    ]
    loaded = [b for b in candidates if b.total_mj > 0]
    if not loaded:
        return LifetimeReport(
            burdens=burdens,
            lifetime_rounds=float("inf"),
            bottleneck_node=-1,
            battery_mj=battery_mj,
        )
    bottleneck = max(loaded, key=lambda b: b.total_mj)
    return LifetimeReport(
        burdens=burdens,
        lifetime_rounds=battery_mj / bottleneck.total_mj,
        bottleneck_node=bottleneck.node,
        battery_mj=battery_mj,
    )


def compare_lifetimes(
    plans: dict[str, QueryPlan],
    energy: EnergyModel,
    sample_rows,
    battery_mj: float,
) -> list[dict]:
    """Lifetime leaderboard across candidate plans."""
    rows = []
    for name, plan in plans.items():
        report = estimate_lifetime(plan, energy, sample_rows, battery_mj)
        rows.append(
            {
                "plan": name,
                "lifetime_rounds": report.lifetime_rounds,
                "bottleneck_node": report.bottleneck_node,
                "bottleneck_mj_per_round": (
                    report.burdens[report.bottleneck_node].total_mj
                    if report.bottleneck_node >= 0
                    else 0.0
                ),
            }
        )
    rows.sort(key=lambda r: -r["lifetime_rounds"])
    return rows
