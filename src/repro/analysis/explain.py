"""Explaining and comparing query plans against sample data."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SamplingError
from repro.network.energy import EnergyModel
from repro.plans.execution import count_topk_hits, execute_plan
from repro.plans.plan import QueryPlan


@dataclass(frozen=True)
class EdgeUsage:
    """How one edge behaves across the samples."""

    edge: int
    depth: int
    bandwidth: int
    mean_transmitted: float
    saturation: float
    """Fraction of samples in which the edge ran full (transmitted ==
    bandwidth) — persistent saturation marks an accuracy bottleneck."""


@dataclass
class PlanReport:
    """The anatomy of one plan over a sample set."""

    num_edges_used: int
    visited_nodes: int
    total_bandwidth: int
    message_cost_mj: float
    value_cost_mj: float
    acquisition_cost_mj: float
    expected_hits: float
    expected_accuracy: float
    edges: list[EdgeUsage] = field(default_factory=list)

    @property
    def total_cost_mj(self) -> float:
        return (
            self.message_cost_mj
            + self.value_cost_mj
            + self.acquisition_cost_mj
        )

    def bottlenecks(self, saturation_threshold: float = 0.9) -> list[EdgeUsage]:
        """Edges saturated in at least this fraction of samples."""
        return [
            usage
            for usage in self.edges
            if usage.saturation >= saturation_threshold
        ]

    def rows(self) -> list[dict]:
        """Edge table for :func:`repro.experiments.reporting.format_table`."""
        return [
            {
                "edge": usage.edge,
                "depth": usage.depth,
                "bandwidth": usage.bandwidth,
                "mean_sent": usage.mean_transmitted,
                "saturation": usage.saturation,
            }
            for usage in self.edges
        ]


def explain_plan(
    plan: QueryPlan,
    sample_matrix,
    energy: EnergyModel,
) -> PlanReport:
    """Dissect a plan against a sample matrix.

    ``sample_matrix`` needs the :class:`~repro.sampling.matrix.
    SampleMatrix` surface (``values``, ``ones_list``, ``num_samples``).
    Edge utilization is measured by replaying the plan on every sample
    row; expected hits use the exact tree recursion.
    """
    if sample_matrix.num_samples == 0:  # pragma: no cover - matrix forbids
        raise SamplingError("sample matrix is empty")
    topology = plan.topology
    ones = sample_matrix.ones_list()

    transmitted: dict[int, list[int]] = {e: [] for e in plan.used_edges}
    for row in sample_matrix.values:
        result = execute_plan(plan, row)
        for edge in plan.used_edges:
            transmitted[edge].append(result.transmitted.get(edge, 0))

    edges = []
    for edge in sorted(plan.used_edges):
        sent = transmitted[edge]
        bandwidth = plan.effective_bandwidth(edge)
        saturated = sum(1 for s in sent if s >= bandwidth)
        edges.append(
            EdgeUsage(
                edge=edge,
                depth=topology.depth(edge),
                bandwidth=plan.bandwidths[edge],
                mean_transmitted=sum(sent) / len(sent),
                saturation=saturated / len(sent),
            )
        )

    active = plan.visited_nodes
    active_edges = [e for e in plan.used_edges if e in active]
    message_cost = sum(energy.message_cost(0) for __ in active_edges)
    value_cost = sum(
        energy.per_value_mj * plan.effective_bandwidth(e)
        for e in active_edges
    )
    acquisition = energy.acquisition_mj * len(active)

    total_hits = sum(count_topk_hits(plan, o) for o in ones)
    k = max((len(o) for o in ones), default=1)
    expected_hits = total_hits / len(ones)
    return PlanReport(
        num_edges_used=len(active_edges),
        visited_nodes=len(active),
        total_bandwidth=sum(plan.bandwidths.values()),
        message_cost_mj=message_cost,
        value_cost_mj=value_cost,
        acquisition_cost_mj=acquisition,
        expected_hits=expected_hits,
        expected_accuracy=expected_hits / k if k else 0.0,
        edges=edges,
    )


@dataclass(frozen=True)
class PlanComparison:
    """The §4.4 re-calculation decision input: is B worth installing?"""

    hits_delta: float
    cost_delta_mj: float
    install_cost_mj: float
    breakeven_queries: float
    """Queries needed before B's per-query advantage (if its running
    cost is lower) repays the installation; ``inf`` when it never does."""

    def worth_installing(self, improvement_threshold: float = 0.10) -> bool:
        """True when B's expected hits beat A's by the threshold
        fraction (the engine's default dissemination rule)."""
        return self.hits_delta > 0 and (
            self.hits_delta >= improvement_threshold
        )


def compare_plans(
    current: QueryPlan,
    candidate: QueryPlan,
    sample_matrix,
    energy: EnergyModel,
) -> PlanComparison:
    """Compare an installed plan with a re-optimized candidate."""
    from repro.simulation.distribution import initial_distribution_cost

    report_a = explain_plan(current, sample_matrix, energy)
    report_b = explain_plan(candidate, sample_matrix, energy)
    hits_delta = report_b.expected_hits - report_a.expected_hits
    cost_delta = report_b.total_cost_mj - report_a.total_cost_mj
    install = initial_distribution_cost(candidate, energy)
    if cost_delta < 0:
        breakeven = install / -cost_delta
    else:
        breakeven = float("inf")
    return PlanComparison(
        hits_delta=hits_delta,
        cost_delta_mj=cost_delta,
        install_cost_mj=install,
        breakeven_queries=breakeven,
    )
