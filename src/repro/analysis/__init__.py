"""Plan introspection and comparison tooling.

Deployments need to understand *why* a plan costs what it costs and
where its accuracy comes from before installing it into a battery-
powered network.  :func:`~repro.analysis.explain.explain_plan` breaks a
plan down (cost split, per-edge expected utilization, bottlenecks,
coverage of the sampled top-k), and
:func:`~repro.analysis.explain.compare_plans` diffs two candidates —
the decision the paper's §4.4 "Plan Re-calculation" policy makes before
paying to disseminate a replacement.
"""

from repro.analysis.explain import (
    EdgeUsage,
    PlanComparison,
    PlanReport,
    compare_plans,
    explain_plan,
)
from repro.analysis.lifetime import (
    LifetimeReport,
    NodeBurden,
    compare_lifetimes,
    estimate_lifetime,
    node_burdens,
)

__all__ = [
    "EdgeUsage",
    "LifetimeReport",
    "NodeBurden",
    "PlanComparison",
    "PlanReport",
    "compare_lifetimes",
    "compare_plans",
    "estimate_lifetime",
    "explain_plan",
    "node_burdens",
]
