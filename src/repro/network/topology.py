"""Tree-structured sensor network topology.

Nodes are integers ``0..n-1`` with the root fixed at ``0`` (the query
station side of the network).  Every non-root node ``u`` owns exactly
one tree edge ``e_u = (u, parent(u))``; throughout the library an edge
is therefore identified by its child endpoint.  This mirrors the
paper's notation where a bandwidth ``b_{e_i}`` is assigned to the edge
between node ``i`` and its parent.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import TopologyError

ROOT = 0


class Topology:
    """An immutable rooted spanning tree over ``n`` sensor nodes.

    Parameters
    ----------
    parents:
        ``parents[u]`` is the parent of node ``u``; ``parents[0]`` must
        be ``-1`` (the root has no parent).
    positions:
        Optional ``(x, y)`` coordinates per node, used by builders and
        plotting; not needed for planning.

    Notes
    -----
    Following the paper, ``anc(u)`` *includes* ``u`` itself and so does
    ``desc(u)``.  Methods taking ``include_self`` default to that
    convention.
    """

    def __init__(
        self,
        parents: Sequence[int],
        positions: Sequence[tuple[float, float]] | None = None,
    ) -> None:
        self._parents = list(parents)
        self.n = len(self._parents)
        if self.n == 0:
            raise TopologyError("topology must contain at least the root node")
        if self._parents[ROOT] != -1:
            raise TopologyError("node 0 must be the root (parent -1)")
        self.positions = list(positions) if positions is not None else None
        if self.positions is not None and len(self.positions) != self.n:
            raise TopologyError("positions length does not match node count")

        self._children: list[list[int]] = [[] for _ in range(self.n)]
        for node, parent in enumerate(self._parents):
            if node == ROOT:
                continue
            if not 0 <= parent < self.n:
                raise TopologyError(f"node {node} has out-of-range parent {parent}")
            if parent == node:
                raise TopologyError(f"node {node} is its own parent")
            self._children[parent].append(node)

        self._depth = [0] * self.n
        self._validate_and_compute_depths()
        self._post_order = self._compute_post_order()
        self._subtree_size = self._compute_subtree_sizes()
        # lazily-built derived structures; a Topology is immutable, so
        # each is computed at most once (repro.lp.fastbuild relies on
        # these staying cheap across repeated replans)
        self._descendant_sets: list[frozenset[int]] | None = None
        self._descendant_matrix: np.ndarray | None = None
        self._path_arrays: tuple[np.ndarray, np.ndarray] | None = None
        self._subtree_size_array: np.ndarray | None = None
        self._depth_array: np.ndarray | None = None

    # -- construction helpers ------------------------------------------
    @classmethod
    def from_parent_map(cls, parent_map: Mapping[int, int], **kwargs) -> "Topology":
        """Build from a ``{child: parent}`` mapping (root omitted or -1)."""
        n = max(
            max(parent_map, default=0),
            max(parent_map.values(), default=0),
        ) + 1
        parents = [-1] * n
        for child, parent in parent_map.items():
            if child == ROOT:
                if parent != -1:
                    raise TopologyError("node 0 must be the root")
                continue
            parents[child] = parent
        for node in range(1, n):
            if parents[node] == -1:
                raise TopologyError(f"node {node} has no parent")
        return cls(parents, **kwargs)

    def _validate_and_compute_depths(self) -> None:
        seen = [False] * self.n
        seen[ROOT] = True
        stack = [ROOT]
        visited = 1
        while stack:
            node = stack.pop()
            for child in self._children[node]:
                if seen[child]:
                    raise TopologyError(f"node {child} reachable twice (cycle?)")
                seen[child] = True
                self._depth[child] = self._depth[node] + 1
                stack.append(child)
                visited += 1
        if visited != self.n:
            orphans = [node for node in range(self.n) if not seen[node]]
            raise TopologyError(f"nodes not reachable from root: {orphans[:10]}")

    def _compute_post_order(self) -> list[int]:
        order: list[int] = []
        stack: list[tuple[int, bool]] = [(ROOT, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
            else:
                stack.append((node, True))
                for child in self._children[node]:
                    stack.append((child, False))
        return order

    def _compute_subtree_sizes(self) -> list[int]:
        sizes = [1] * self.n
        for node in self._post_order:
            for child in self._children[node]:
                sizes[node] += sizes[child]
        return sizes

    # -- basic accessors --------------------------------------------------
    @property
    def root(self) -> int:
        return ROOT

    def parent(self, node: int) -> int:
        """Parent of ``node`` (-1 for the root)."""
        return self._parents[node]

    def children(self, node: int) -> tuple[int, ...]:
        return tuple(self._children[node])

    def depth(self, node: int) -> int:
        """Number of edges between ``node`` and the root."""
        return self._depth[node]

    @property
    def height(self) -> int:
        """Maximum node depth."""
        return max(self._depth)

    def subtree_size(self, node: int) -> int:
        """``|desc(node)|`` including the node itself."""
        return self._subtree_size[node]

    def is_leaf(self, node: int) -> bool:
        return not self._children[node]

    @property
    def nodes(self) -> range:
        return range(self.n)

    @property
    def edges(self) -> list[int]:
        """All tree edges, identified by their child endpoint."""
        return [node for node in range(self.n) if node != ROOT]

    @property
    def num_edges(self) -> int:
        return self.n - 1

    # -- tree walks ----------------------------------------------------------
    def post_order(self) -> list[int]:
        """Children-before-parents order (root last)."""
        return list(self._post_order)

    def pre_order(self) -> list[int]:
        """Parents-before-children order (root first)."""
        return list(reversed(self._post_order))

    def ancestors(self, node: int, include_self: bool = True) -> list[int]:
        """``anc(node)`` bottom-up; includes the root."""
        chain = [node] if include_self else []
        current = self._parents[node]
        while current != -1:
            chain.append(current)
            current = self._parents[current]
        return chain

    def path_edges(self, node: int) -> list[int]:
        """Edges on the path ``node -> root`` (edge = its child endpoint)."""
        edges = []
        current = node
        while current != ROOT:
            edges.append(current)
            current = self._parents[current]
        return edges

    def descendants(self, node: int, include_self: bool = True) -> list[int]:
        """``desc(node)`` in pre-order."""
        out = [node] if include_self else []
        stack = list(self._children[node])
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(self._children[current])
        return out

    def descendant_sets(self) -> list[frozenset[int]]:
        """``desc(u)`` (with self) for all nodes, computed once and cached."""
        if self._descendant_sets is None:
            sets: list[set[int]] = [{node} for node in range(self.n)]
            for node in self._post_order:
                for child in self._children[node]:
                    sets[node] |= sets[child]
            self._descendant_sets = [frozenset(s) for s in sets]
        return list(self._descendant_sets)

    def descendant_matrix(self) -> np.ndarray:
        """Cached boolean matrix ``D[u, v] = v in desc(u)`` (with self).

        Rows are nodes; the fast LP compiler uses row ``e`` of this
        matrix as the membership mask of edge ``e``'s subtree.  The
        returned array is shared — treat it as read-only.
        """
        if self._descendant_matrix is None:
            matrix = np.zeros((self.n, self.n), dtype=bool)
            for node in self._post_order:
                matrix[node, node] = True
                for child in self._children[node]:
                    matrix[node] |= matrix[child]
            matrix.setflags(write=False)
            self._descendant_matrix = matrix
        return self._descendant_matrix

    def path_edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached CSR-style ``(indptr, edges)`` encoding of every root path.

        ``edges[indptr[u]:indptr[u+1]]`` equals :meth:`path_edges`\\ ``(u)``
        (bottom-up, edge = child endpoint).  Both arrays are shared —
        treat them as read-only.
        """
        if self._path_arrays is None:
            indptr = np.zeros(self.n + 1, dtype=np.int64)
            chunks: list[list[int]] = []
            total = 0
            for node in range(self.n):
                path = self.path_edges(node)
                total += len(path)
                indptr[node + 1] = total
                chunks.append(path)
            flat = np.fromiter(
                (edge for path in chunks for edge in path),
                dtype=np.int64,
                count=total,
            )
            indptr.setflags(write=False)
            flat.setflags(write=False)
            self._path_arrays = (indptr, flat)
        return self._path_arrays

    def subtree_size_array(self) -> np.ndarray:
        """Cached ``|desc(u)|`` per node as an int array (read-only)."""
        if self._subtree_size_array is None:
            array = np.asarray(self._subtree_size, dtype=np.int64)
            array.setflags(write=False)
            self._subtree_size_array = array
        return self._subtree_size_array

    def depth_array(self) -> np.ndarray:
        """Cached node depths as an int array (read-only)."""
        if self._depth_array is None:
            array = np.asarray(self._depth, dtype=np.int64)
            array.setflags(write=False)
            self._depth_array = array
        return self._depth_array

    def is_ancestor(self, ancestor: int, node: int) -> bool:
        """True iff ``ancestor`` is on the path node -> root (or is node)."""
        current = node
        while current != -1:
            if current == ancestor:
                return True
            current = self._parents[current]
        return False

    def child_toward(self, ancestor: int, node: int) -> int:
        """The child of ``ancestor`` on the path down to ``node``.

        Requires ``ancestor`` to be a strict ancestor of ``node``.
        """
        if ancestor == node or not self.is_ancestor(ancestor, node):
            raise TopologyError(f"{ancestor} is not a strict ancestor of {node}")
        current = node
        while self._parents[current] != ancestor:
            current = self._parents[current]
        return current

    def sibling_children(self, node: int, ancestor: int) -> list[int]:
        """``sibling(node, ancestor)``: children of ``ancestor`` that are
        not ancestors of ``node`` (paper §4.3).

        When ``ancestor == node`` this is simply all of ``node``'s
        children.
        """
        if ancestor == node:
            return list(self._children[node])
        on_path = self.child_toward(ancestor, node)
        return [child for child in self._children[ancestor] if child != on_path]

    def leaves(self) -> list[int]:
        return [node for node in range(self.n) if self.is_leaf(node)]

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n))

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"Topology(n={self.n}, height={self.height})"

    # -- structural equality (useful in tests) -------------------------------
    def same_structure(self, other: "Topology") -> bool:
        return self._parents == other._parents

    def cache_token(self) -> tuple:
        """Content identity for result caches (see
        :mod:`repro.experiments.runner`): the parent vector determines
        every derived structure, so two topologies with equal tokens
        behave identically regardless of which lazy caches are built."""
        return tuple(self._parents)


def validate_readings(topology: Topology, readings: Iterable[float]) -> list[float]:
    """Check a readings vector against a topology; return it as a list."""
    values = [float(v) for v in readings]
    if len(values) != topology.n:
        raise TopologyError(
            f"readings length {len(values)} != node count {topology.n}"
        )
    return values
