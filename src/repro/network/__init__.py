"""Sensor-network substrate: topology, energy model, link failures.

The paper assumes a network of MICA2-class motes organized as a
spanning tree rooted at a query station (§2).  This subpackage builds
that substrate: node placement, radio-range-constrained min-hop
spanning trees, the per-message/per-byte communication energy model,
and transient link-failure statistics used to inflate edge costs during
optimization (§4.4).
"""

from repro.network.builder import (
    balanced_tree,
    grid_topology,
    line_topology,
    random_topology,
    star_topology,
    zoned_topology,
)
from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.network.ghs import GHSOutcome, build_mst
from repro.network.maintenance import remove_node
from repro.network.topology import Topology

__all__ = [
    "EnergyModel",
    "GHSOutcome",
    "LinkFailureModel",
    "Topology",
    "build_mst",
    "remove_node",
    "balanced_tree",
    "grid_topology",
    "line_topology",
    "random_topology",
    "star_topology",
    "zoned_topology",
]
