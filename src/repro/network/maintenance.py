"""Topology maintenance after permanent node failures (paper §4.4).

"We assume that permanent node failure is possible, but rare ... If a
node is non-functioning for an extended period of time, T adjusts to
exclude the node.  The plan is then re-optimized based on the new
topology."

:func:`remove_node` excludes a dead node and re-attaches its orphaned
child subtrees; surviving nodes are renumbered to stay contiguous
(0..n-2), and the returned mapping lets callers migrate per-node state
such as sample windows (:meth:`repro.query.engine.TopKEngine.
handle_permanent_failure` does exactly that).
"""

from __future__ import annotations

import math

from repro.errors import TopologyError
from repro.network.topology import ROOT, Topology


def remove_node(
    topology: Topology,
    dead: int,
    radio_range: float | None = None,
) -> tuple[Topology, dict[int, int]]:
    """Exclude a dead node; return the new tree and an old→new id map.

    Re-attachment strategy for the dead node's children:

    - default: adopt them at the dead node's parent ("grandparenting"),
      which needs no position information;
    - with ``radio_range`` and node positions available, each orphan
      instead connects to the nearest surviving node within radio range
      that is not its own descendant (falling back to grandparenting
      when none is in range).
    """
    if dead == ROOT:
        raise TopologyError("the root (query station) cannot be removed")
    if not 0 <= dead < topology.n:
        raise TopologyError(f"node {dead} is not in the topology")
    if topology.n <= 1:
        raise TopologyError("cannot remove the only node")

    survivors = [node for node in topology.nodes if node != dead]
    id_map = {old: new for new, old in enumerate(survivors)}

    new_parents = [-1] * len(survivors)
    positions = topology.positions
    orphan_subtrees = {
        child: frozenset(topology.descendants(child))
        for child in topology.children(dead)
    }
    # candidates must lie outside EVERY orphan subtree: two orphans
    # adopting into each other's subtrees would detach both from the
    # root (they'd form a cycle among themselves)
    all_orphaned: set[int] = set()
    for subtree in orphan_subtrees.values():
        all_orphaned |= subtree

    for old in survivors:
        if old == ROOT:
            continue
        parent = topology.parent(old)
        if parent != dead:
            new_parents[id_map[old]] = id_map[parent]
            continue
        # orphan: pick a new parent among still-rooted survivors
        new_parent = topology.parent(dead)
        if radio_range is not None and positions is not None:
            candidate = _nearest_survivor(
                topology, old, all_orphaned, dead, radio_range
            )
            if candidate is not None:
                new_parent = candidate
        new_parents[id_map[old]] = id_map[new_parent]

    new_positions = (
        [positions[old] for old in survivors] if positions is not None else None
    )
    return Topology(new_parents, positions=new_positions), id_map


def _nearest_survivor(
    topology: Topology,
    orphan: int,
    excluded: set[int],
    dead: int,
    radio_range: float,
) -> int | None:
    """Closest in-range node that is neither dead nor inside any
    orphaned subtree (those are not reliably rooted yet)."""
    positions = topology.positions
    assert positions is not None
    ox, oy = positions[orphan]
    best: tuple[float, int] | None = None
    for node in topology.nodes:
        if node == dead or node in excluded:
            continue
        x, y = positions[node]
        distance = math.hypot(ox - x, oy - y)
        if distance <= radio_range and (best is None or distance < best[0]):
            best = (distance, node)
    return best[1] if best else None


def remap_readings(readings, id_map: dict[int, int], new_size: int):
    """Project a readings vector onto the surviving node ids."""
    projected = [0.0] * new_size
    for old, new in id_map.items():
        projected[new] = float(readings[old])
    return projected
