"""Distributed minimum-spanning-tree construction (paper's citation [5]).

The paper assumes "T is initially constructed and modified over time as
needed ... using techniques such as those in [Gallager, Humblet &
Spira]".  This module simulates that construction: a fragment-merging
(Borůvka-style, as GHS executes) distributed MST over the radio graph,
counting the messages the nodes would exchange — which is energy, the
currency of everything else in this library.

The simulation is round-based:

1. every fragment locates its minimum-weight outgoing edge (MOE) by
   testing incident edges (``test``/``accept``/``reject`` message
   pairs, each edge tested once per endpoint per round) and
   convergecasting reports up the fragment (one message per fragment
   edge);
2. fragments merge along the chosen MOEs (one ``connect`` message per
   MOE);
3. repeat until a single fragment spans the graph — at most
   ``log2(n)`` rounds, the classic bound.

The result is the exact MST (unique under distinct weights; ties are
broken by the edge's node-id pair, which makes weights totally ordered
the same way readings are), returned as a
:class:`~repro.network.topology.Topology` rooted at node 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import math

from repro.errors import TopologyError
from repro.network.topology import ROOT, Topology

EdgeKey = tuple[float, int, int]  # (weight, lower id, higher id): total order


@dataclass
class GHSOutcome:
    """The built tree plus the distributed algorithm's cost profile."""

    topology: Topology
    mst_weight: float
    rounds: int
    messages: int
    edges_tested: int
    fragments_per_round: list[int] = field(default_factory=list)


def _edge_key(weight: float, a: int, b: int) -> EdgeKey:
    return (weight, min(a, b), max(a, b))


def build_mst(
    positions: list[tuple[float, float]],
    radio_range: float,
) -> GHSOutcome:
    """Run the simulated distributed MST over a radio graph.

    Edge weights are Euclidean distances; only pairs within
    ``radio_range`` can communicate.  Raises
    :class:`~repro.errors.TopologyError` if the radio graph is
    disconnected (no spanning tree exists to build).
    """
    n = len(positions)
    if n == 0:
        raise TopologyError("no positions given")
    if n == 1:
        return GHSOutcome(
            topology=Topology([-1], positions=list(positions)),
            mst_weight=0.0,
            rounds=0,
            messages=0,
            edges_tested=0,
        )

    range_sq = radio_range * radio_range
    adjacency: list[list[tuple[int, float]]] = [[] for __ in range(n)]
    for a in range(n):
        ax, ay = positions[a]
        for b in range(a + 1, n):
            bx, by = positions[b]
            dist_sq = (ax - bx) ** 2 + (ay - by) ** 2
            if dist_sq <= range_sq:
                weight = math.sqrt(dist_sq)
                adjacency[a].append((b, weight))
                adjacency[b].append((a, weight))

    fragment = list(range(n))  # fragment id per node
    mst_edges: set[tuple[int, int]] = set()
    mst_weight = 0.0
    rounds = 0
    messages = 0
    edges_tested = 0
    fragments_per_round: list[int] = []

    num_fragments = n
    while num_fragments > 1:
        rounds += 1
        fragments_per_round.append(num_fragments)
        if rounds > n:  # pragma: no cover - merge always progresses
            raise TopologyError("distributed MST failed to converge")

        # 1. each fragment finds its minimum outgoing edge
        best_moe: dict[int, tuple[EdgeKey, int, int]] = {}
        for node in range(n):
            for neighbor, weight in adjacency[node]:
                if fragment[neighbor] == fragment[node]:
                    continue
                # test/accept message pair on this candidate edge
                edges_tested += 1
                messages += 2
                key = _edge_key(weight, node, neighbor)
                current = best_moe.get(fragment[node])
                if current is None or key < current[0]:
                    best_moe[fragment[node]] = (key, node, neighbor)
        if not best_moe:
            raise TopologyError(
                "radio graph is disconnected: some fragments have no"
                " outgoing edges"
            )
        # convergecast of reports inside each fragment: one message per
        # fragment tree edge (fragment size - 1), plus the connect
        fragment_sizes: dict[int, int] = {}
        for f in fragment:
            fragment_sizes[f] = fragment_sizes.get(f, 0) + 1
        messages += sum(size - 1 for size in fragment_sizes.values())

        # 2. merge along the chosen MOEs (union-find over fragment ids)
        parent_of = {f: f for f in fragment_sizes}

        def find(f: int) -> int:
            while parent_of[f] != f:
                parent_of[f] = parent_of[parent_of[f]]
                f = parent_of[f]
            return f

        for f, (key, node, neighbor) in best_moe.items():
            messages += 1  # the connect message
            a, b = find(fragment[node]), find(fragment[neighbor])
            edge = (min(node, neighbor), max(node, neighbor))
            if a == b and edge in mst_edges:
                continue  # both endpoints chose the same edge
            if edge not in mst_edges:
                mst_edges.add(edge)
                mst_weight += key[0]
            if a != b:
                parent_of[a] = b

        # 3. relabel nodes with their merged fragment id
        fragment = [find(fragment[node]) for node in range(n)]
        num_fragments = len(set(fragment))

    topology = _orient(mst_edges, positions)
    return GHSOutcome(
        topology=topology,
        mst_weight=mst_weight,
        rounds=rounds,
        messages=messages,
        edges_tested=edges_tested,
        fragments_per_round=fragments_per_round,
    )


def _orient(
    mst_edges: set[tuple[int, int]],
    positions: list[tuple[float, float]],
) -> Topology:
    """Root the undirected MST at node 0 (the query station)."""
    n = len(positions)
    neighbors: list[list[int]] = [[] for __ in range(n)]
    for a, b in mst_edges:
        neighbors[a].append(b)
        neighbors[b].append(a)
    parents = [-1] * n
    seen = [False] * n
    seen[ROOT] = True
    frontier = [ROOT]
    while frontier:
        nxt = []
        for node in frontier:
            for other in neighbors[node]:
                if not seen[other]:
                    seen[other] = True
                    parents[other] = node
                    nxt.append(other)
        frontier = nxt
    if not all(seen):  # pragma: no cover - mst spans by construction
        raise TopologyError("MST does not span all nodes")
    return Topology(parents, positions=list(positions))
