"""Topology builders.

``random_topology`` implements the paper's §5 procedure: place nodes
uniformly at random in a rectangle, connect pairs within radio range,
and build a spanning tree in which every node is as few hops from the
root as possible (BFS layers; ties broken by physical proximity to the
candidate parent).  The remaining builders produce deterministic shapes
used by tests and by the contention-zone experiments.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.errors import TopologyError
from repro.network.topology import ROOT, Topology


def random_topology(
    n: int,
    width: float = 100.0,
    height: float = 100.0,
    radio_range: float = 25.0,
    rng: np.random.Generator | None = None,
    root_position: tuple[float, float] | None = None,
    max_attempts: int = 25,
) -> Topology:
    """Random connected sensor field with a min-hop spanning tree.

    Parameters
    ----------
    n:
        Total node count *including* the root.
    root_position:
        Where the query station sits; defaults to the rectangle center.
    max_attempts:
        Placements are re-drawn until the radio graph is connected;
        gives up with :class:`~repro.errors.TopologyError` after this
        many tries (radio range too small for the density).
    """
    if n < 1:
        raise TopologyError("need at least one node")
    rng = rng or np.random.default_rng()
    if root_position is None:
        root_position = (width / 2.0, height / 2.0)

    for __ in range(max_attempts):
        xs = rng.uniform(0.0, width, size=n)
        ys = rng.uniform(0.0, height, size=n)
        xs[ROOT], ys[ROOT] = root_position
        positions = list(zip(xs.tolist(), ys.tolist()))
        parents = _min_hop_tree(positions, radio_range)
        if parents is not None:
            return Topology(parents, positions=positions)
    raise TopologyError(
        f"could not build a connected network of {n} nodes with radio range"
        f" {radio_range} in {width}x{height} after {max_attempts} attempts"
    )


def _min_hop_tree(
    positions: list[tuple[float, float]], radio_range: float
) -> list[int] | None:
    """BFS min-hop tree over the radio graph; None if disconnected.

    Among parents at the minimal hop distance, the physically nearest
    one is chosen, which keeps links robust.
    """
    n = len(positions)
    range_sq = radio_range * radio_range

    def dist_sq(a: int, b: int) -> float:
        ax, ay = positions[a]
        bx, by = positions[b]
        return (ax - bx) ** 2 + (ay - by) ** 2

    neighbors: list[list[int]] = [[] for _ in range(n)]
    for a in range(n):
        for b in range(a + 1, n):
            if dist_sq(a, b) <= range_sq:
                neighbors[a].append(b)
                neighbors[b].append(a)

    hops = [-1] * n
    parents = [-1] * n
    hops[ROOT] = 0
    frontier = [ROOT]
    while frontier:
        next_frontier: list[int] = []
        for node in frontier:
            for other in neighbors[node]:
                if hops[other] == -1:
                    hops[other] = hops[node] + 1
                    parents[other] = node
                    next_frontier.append(other)
                elif hops[other] == hops[node] + 1:
                    # same BFS layer: prefer the physically closer parent
                    if dist_sq(other, node) < dist_sq(other, parents[other]):
                        parents[other] = node
        frontier = next_frontier

    if any(h == -1 for h in hops):
        return None
    return parents


def line_topology(n: int) -> Topology:
    """A chain 0 - 1 - 2 - ... - (n-1)."""
    parents = [-1] + list(range(n - 1))
    positions = [(float(i), 0.0) for i in range(n)]
    return Topology(parents, positions=positions)


def star_topology(n: int) -> Topology:
    """Root with ``n - 1`` direct children."""
    parents = [-1] + [ROOT] * (n - 1)
    positions = [(0.0, 0.0)] + [
        (math.cos(2 * math.pi * i / max(1, n - 1)),
         math.sin(2 * math.pi * i / max(1, n - 1)))
        for i in range(n - 1)
    ]
    return Topology(parents, positions=positions)


def balanced_tree(branching: int, depth: int) -> Topology:
    """Complete ``branching``-ary tree of the given depth (root depth 0)."""
    if branching < 1 or depth < 0:
        raise TopologyError("branching must be >= 1 and depth >= 0")
    parents = [-1]
    frontier = [ROOT]
    for __ in range(depth):
        next_frontier = []
        for node in frontier:
            for __child in range(branching):
                parents.append(node)
                next_frontier.append(len(parents) - 1)
        frontier = next_frontier
    return Topology(parents)


def grid_topology(rows: int, cols: int, spacing: float = 1.0) -> Topology:
    """Grid of nodes; tree edges follow min-hop BFS from corner root."""
    n = rows * cols
    positions = [
        (spacing * (i % cols), spacing * (i // cols)) for i in range(n)
    ]
    parents = _min_hop_tree(positions, radio_range=spacing * 1.01)
    if parents is None:  # pragma: no cover - grid is always connected
        raise TopologyError("grid unexpectedly disconnected")
    return Topology(parents, positions=positions)


def zoned_topology(
    num_zones: int,
    zone_size: int,
    relay_hops: int = 3,
    radius: float = 60.0,
) -> Topology:
    """Contention-zone layout of Figure 6: root in the center, zones
    evenly spaced around the perimeter, each reached via a relay chain.

    Returns a topology whose node ordering is: root, then for each zone
    its ``relay_hops`` relays (root-side first) followed by its
    ``zone_size`` member nodes.  Use :func:`zone_members` to recover the
    per-zone node sets.
    """
    if num_zones < 1 or zone_size < 1 or relay_hops < 1:
        raise TopologyError("zones, zone size and relay hops must be positive")
    parents = [-1]
    positions = [(0.0, 0.0)]
    for zone in range(num_zones):
        angle = 2 * math.pi * zone / num_zones
        previous = ROOT
        for hop in range(1, relay_hops + 1):
            r = radius * hop / (relay_hops + 1)
            positions.append((r * math.cos(angle), r * math.sin(angle)))
            parents.append(previous)
            previous = len(parents) - 1
        head = previous
        for member in range(zone_size):
            # zone members fan out around the zone head
            jitter = 2 * math.pi * member / zone_size
            positions.append(
                (
                    radius * math.cos(angle) + 3.0 * math.cos(jitter),
                    radius * math.sin(angle) + 3.0 * math.sin(jitter),
                )
            )
            parents.append(head)
    return Topology(parents, positions=positions)


def zone_members(num_zones: int, zone_size: int, relay_hops: int = 3) -> list[list[int]]:
    """Node ids of each zone's members in a :func:`zoned_topology`."""
    members: list[list[int]] = []
    node = 1
    for __ in range(num_zones):
        node += relay_hops
        members.append(list(range(node, node + zone_size)))
        node += zone_size
    return members


def zone_relays(num_zones: int, zone_size: int, relay_hops: int = 3) -> list[int]:
    """Node ids of all relay nodes in a :func:`zoned_topology`."""
    relays: list[int] = []
    node = 1
    for __ in range(num_zones):
        relays.extend(range(node, node + relay_hops))
        node += relay_hops + zone_size
    return relays


def nearest_neighbor_tree(
    positions: list[tuple[float, float]],
) -> Topology:
    """Spanning tree connecting each node greedily to the nearest
    already-connected node (Prim's order).  Used by the Intel-Lab
    surrogate where radio range is tuned afterwards.
    """
    n = len(positions)
    if n == 0:
        raise TopologyError("no positions given")
    parents = [-1] * n
    in_tree = [False] * n
    in_tree[ROOT] = True

    def dist_sq(a: int, b: int) -> float:
        ax, ay = positions[a]
        bx, by = positions[b]
        return (ax - bx) ** 2 + (ay - by) ** 2

    heap: list[tuple[float, int, int]] = []
    for other in range(1, n):
        heapq.heappush(heap, (dist_sq(ROOT, other), ROOT, other))
    added = 1
    while added < n and heap:
        __, parent, node = heapq.heappop(heap)
        if in_tree[node]:
            continue
        parents[node] = parent
        in_tree[node] = True
        added += 1
        for other in range(1, n):
            if not in_tree[other]:
                heapq.heappush(heap, (dist_sq(node, other), node, other))
    if added != n:  # pragma: no cover - complete graph is connected
        raise TopologyError("nearest-neighbor tree failed to connect")
    return Topology(parents, positions=positions)
