"""Transient link failures and failure-aware edge costs (paper §4.4).

The paper's recipe: keep per-edge statistics on failure frequency and
the extra cost of routing around the failed edge under the reliable
protocol, then *inflate each edge's cost by failure_probability ×
reroute_extra_cost* so the optimizer naturally avoids flaky links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.topology import Topology


@dataclass
class LinkFailureModel:
    """Per-edge transient failure probabilities and re-route costs.

    Attributes
    ----------
    failure_probability:
        ``failure_probability[u]`` is the chance that a single unicast
        over edge ``e_u = (u, parent(u))`` fails transiently.
    reroute_extra_mj:
        Expected extra energy spent delivering a message around edge
        ``e_u`` when it fails (detour hops + retries).
    """

    failure_probability: dict[int, float] = field(default_factory=dict)
    reroute_extra_mj: dict[int, float] = field(default_factory=dict)

    def probability(self, edge: int) -> float:
        return self.failure_probability.get(edge, 0.0)

    def reroute_cost(self, edge: int) -> float:
        return self.reroute_extra_mj.get(edge, 0.0)

    def expected_penalty(self, edge: int) -> float:
        """Expected extra cost per message on ``edge`` (paper §4.4)."""
        return self.probability(edge) * self.reroute_cost(edge)

    def record_failure(self, edge: int, failed: bool, alpha: float = 0.05) -> None:
        """Update the failure-rate estimate with one observation (EWMA)."""
        previous = self.probability(edge)
        observation = 1.0 if failed else 0.0
        self.failure_probability[edge] = (1 - alpha) * previous + alpha * observation

    @classmethod
    def uniform(
        cls,
        topology: Topology,
        probability: float,
        reroute_extra_mj: float,
    ) -> "LinkFailureModel":
        """Same failure behaviour on every edge."""
        return cls(
            failure_probability={e: probability for e in topology.edges},
            reroute_extra_mj={e: reroute_extra_mj for e in topology.edges},
        )

    @classmethod
    def random(
        cls,
        topology: Topology,
        rng: np.random.Generator,
        max_probability: float = 0.2,
        reroute_extra_mj: float = 2.0,
    ) -> "LinkFailureModel":
        """Independent uniform failure rates, for experiments."""
        return cls(
            failure_probability={
                e: float(rng.uniform(0.0, max_probability)) for e in topology.edges
            },
            reroute_extra_mj={e: reroute_extra_mj for e in topology.edges},
        )

    def sample_failure(self, edge: int, rng: np.random.Generator) -> bool:
        """Draw whether one message on ``edge`` fails."""
        return bool(rng.random() < self.probability(edge))
