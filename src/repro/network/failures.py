"""Transient link failures and failure-aware edge costs (paper §4.4).

The paper's recipe: keep per-edge statistics on failure frequency and
the extra cost of routing around the failed edge under the reliable
protocol, then *inflate each edge's cost by failure_probability ×
reroute_extra_cost* so the optimizer naturally avoids flaky links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.topology import Topology


@dataclass
class LinkFailureModel:
    """Per-edge transient failure probabilities and re-route costs.

    Attributes
    ----------
    failure_probability:
        ``failure_probability[u]`` is the chance that a single unicast
        over edge ``e_u = (u, parent(u))`` fails transiently.
    reroute_extra_mj:
        Expected extra energy spent delivering a message around edge
        ``e_u`` when it fails (detour hops + retries).
    """

    failure_probability: dict[int, float] = field(default_factory=dict)
    reroute_extra_mj: dict[int, float] = field(default_factory=dict)

    def probability(self, edge: int) -> float:
        return self.failure_probability.get(edge, 0.0)

    def reroute_cost(self, edge: int) -> float:
        return self.reroute_extra_mj.get(edge, 0.0)

    def expected_penalty(self, edge: int) -> float:
        """Expected extra cost per message on ``edge`` (paper §4.4)."""
        return self.probability(edge) * self.reroute_cost(edge)

    def record_failure(self, edge: int, failed: bool, alpha: float = 0.05) -> None:
        """Update the failure-rate estimate with one observation (EWMA)."""
        previous = self.probability(edge)
        observation = 1.0 if failed else 0.0
        self.failure_probability[edge] = (1 - alpha) * previous + alpha * observation

    @classmethod
    def uniform(
        cls,
        topology: Topology,
        probability: float,
        reroute_extra_mj: float,
    ) -> "LinkFailureModel":
        """Same failure behaviour on every edge."""
        return cls(
            failure_probability={e: probability for e in topology.edges},
            reroute_extra_mj={e: reroute_extra_mj for e in topology.edges},
        )

    @classmethod
    def random(
        cls,
        topology: Topology,
        rng: np.random.Generator,
        max_probability: float = 0.2,
        reroute_extra_mj: float = 2.0,
    ) -> "LinkFailureModel":
        """Independent uniform failure rates, for experiments."""
        return cls(
            failure_probability={
                e: float(rng.uniform(0.0, max_probability)) for e in topology.edges
            },
            reroute_extra_mj={e: reroute_extra_mj for e in topology.edges},
        )

    def sample_failure(self, edge: int, rng: np.random.Generator) -> bool:
        """Draw whether one message on ``edge`` fails."""
        return bool(rng.random() < self.probability(edge))

    # -- vectorized accessors (the batch simulator's hot path) ----------
    def probability_vector(self, edges) -> np.ndarray:
        """Failure probabilities for a sequence of edges, as an array."""
        return np.array([self.probability(e) for e in edges], dtype=np.float64)

    def reroute_vector(self, edges) -> np.ndarray:
        """Re-route penalties for a sequence of edges, as an array."""
        return np.array([self.reroute_cost(e) for e in edges], dtype=np.float64)

    def sample_failure_matrix(
        self, edges, rng: np.random.Generator, num_draws: int
    ) -> np.ndarray:
        """Draw ``(num_draws, len(edges))`` failure outcomes at once.

        One ``rng.random((num_draws, len(edges)))`` call consumes the
        generator's uniform stream in exactly the order that
        ``num_draws * len(edges)`` sequential :meth:`sample_failure`
        calls would (row-major: all of draw 0's edges, then draw 1's,
        ...), so a batch simulation seeded identically to a scalar
        epoch-by-epoch loop sees the *same* failures — the shared-draw
        discipline the equivalence tests rely on.
        """
        edges = list(edges)
        if not edges:
            return np.zeros((num_draws, 0), dtype=bool)
        draws = rng.random((num_draws, len(edges)))
        return draws < self.probability_vector(edges)[None, :]
