"""Radio communication energy model (paper §2).

The cost of a unicast message carrying ``w`` bytes of content is
``s + beta * w`` where ``s`` is the per-message cost (handshake of the
reliable protocol + header) and ``beta`` the per-byte cost derived from
the radio's send/receive power and byte rate.

The paper's printed MICA2 constants are partially illegible in the
available text; :meth:`EnergyModel.mica2` encodes the relationship the
paper stresses — the per-message cost dominates per-byte costs, which
motivates visiting few nodes and batching values — with plausible
MICA2-scale magnitudes (documented in DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyModel:
    """Per-message/per-byte communication costs, in millijoules.

    Attributes
    ----------
    sending_mw / receiving_mw / byte_rate:
        Radio characteristics; ``per_byte_mj`` is derived from them as
        ``(sending + receiving) / byte_rate`` exactly as in the paper's
        table.  Defaults approximate the MICA2's CC1000 radio (TX
        ~27mA, RX ~10mA at 3V; ~2400 effective bytes/s with Manchester
        encoding).
    per_message_mj:
        Fixed cost of any unicast (handshake + header), paid by sender
        and receiver together.  The paper stresses it is high compared
        with the per-byte cost (here ~13x).
    value_bytes:
        Bytes used to encode one sensor value (reading + node id) in a
        message payload.
    """

    sending_mw: float = 81.0
    receiving_mw: float = 30.0
    byte_rate: float = 2400.0
    per_message_mj: float = 0.6
    value_bytes: int = 8
    acquisition_mj: float = 0.0
    """Energy to take one sensor measurement (paper §4.4 "Modeling
    Other Costs"); zero by default since radio dominates, but the
    planners charge it per visited node when set."""

    @property
    def per_byte_mj(self) -> float:
        return (self.sending_mw + self.receiving_mw) / self.byte_rate

    @property
    def per_value_mj(self) -> float:
        """Cost of moving one sensor value across one edge (bytes only)."""
        return self.per_byte_mj * self.value_bytes

    def message_cost(self, num_values: int, extra_bytes: int = 0) -> float:
        """Energy for one unicast carrying ``num_values`` values.

        ``extra_bytes`` covers small control fields such as the proven
        count in proof-carrying plans or the ``(t, l, h)`` triple of the
        mop-up protocol.
        """
        if num_values < 0:
            raise ValueError("num_values must be non-negative")
        payload = num_values * self.value_bytes + extra_bytes
        return self.per_message_mj + self.per_byte_mj * payload

    def broadcast_cost(self, extra_bytes: int = 0) -> float:
        """Energy for one local broadcast (e.g., a re-execute trigger).

        Broadcasts skip the unicast handshake; we charge half the
        per-message cost plus payload bytes.
        """
        return 0.5 * self.per_message_mj + self.per_byte_mj * extra_bytes

    @classmethod
    def mica2(cls) -> "EnergyModel":
        """MICA2-mote-scale constants (see module docstring)."""
        return cls()

    @classmethod
    def uniform(cls, per_message_mj: float = 1.0, per_value_mj: float = 0.1) -> "EnergyModel":
        """A simplified model handy in tests: explicit message/value costs."""
        # choose radio parameters that realize per_value_mj with 1-byte values
        return cls(
            sending_mw=per_value_mj,
            receiving_mw=0.0,
            byte_rate=1.0,
            per_message_mj=per_message_mj,
            value_bytes=1,
        )
