"""Unit tests for approximate-plan execution (sort-and-forward)."""

import pytest

from repro.plans.execution import count_topk_hits, execute_plan, expected_hits
from repro.plans.plan import QueryPlan, top_k_set


class TestExecutePlan:
    def test_full_plan_returns_everything(self, small_tree):
        readings = [10, 20, 30, 40, 50, 60, 70]
        result = execute_plan(QueryPlan.full(small_tree), readings)
        assert result.returned_nodes == set(small_tree.nodes)
        assert [v for v, __ in result.returned] == sorted(
            (float(r) for r in readings), reverse=True
        )

    def test_local_filtering_drops_small_values(self, small_tree):
        # node 1 receives 3,4 but may pass only one value up
        readings = [0, 5, 0, 80, 90, 0, 0]
        plan = QueryPlan(small_tree, {1: 1, 3: 1, 4: 1})
        result = execute_plan(plan, readings)
        assert result.returned_nodes == {0, 4}
        assert result.transmitted[1] == 1

    def test_zero_bandwidth_subtree_is_silent(self, small_tree):
        readings = [0, 0, 0, 99, 99, 99, 99]
        plan = QueryPlan(small_tree, {3: 1})  # edge 1 is unused
        result = execute_plan(plan, readings)
        assert result.returned_nodes == {0}
        assert result.messages == []

    def test_messages_match_transmitted(self, small_tree):
        readings = [1, 2, 3, 4, 5, 6, 7]
        plan = QueryPlan.naive_k(small_tree, 2)
        result = execute_plan(plan, readings)
        by_edge = {m.edge: m.num_values for m in result.messages}
        assert by_edge == result.transmitted
        # a subtree never sends more than its bandwidth
        for edge, sent in result.transmitted.items():
            assert sent <= plan.bandwidth(edge)

    def test_top_k_nodes_helper(self, small_tree):
        readings = [1, 2, 3, 4, 5, 6, 7]
        result = execute_plan(QueryPlan.full(small_tree), readings)
        assert result.top_k_nodes(2) == {5, 6}

    def test_single_node_network(self):
        from repro.network.topology import Topology

        topo = Topology([-1])
        result = execute_plan(QueryPlan(topo, {}), [5.0])
        assert result.returned == [(5.0, 0)]


class TestCountHits:
    def test_matches_manual_example(self, small_tree):
        # top-2 nodes are 4 and 6; plan reaches only node 4's side
        readings = [0, 0, 0, 1, 9, 0, 8]
        ones = top_k_set(readings, 2)
        plan = QueryPlan(small_tree, {1: 1, 4: 1})
        assert count_topk_hits(plan, ones) == 1

    def test_bandwidth_caps_flow(self, small_tree):
        ones = {3, 4}
        narrow = QueryPlan(small_tree, {1: 1, 3: 1, 4: 1})
        wide = QueryPlan(small_tree, {1: 2, 3: 1, 4: 1})
        assert count_topk_hits(narrow, ones) == 1
        assert count_topk_hits(wide, ones) == 2

    def test_root_always_counts(self, small_tree):
        plan = QueryPlan(small_tree, {})
        assert count_topk_hits(plan, {0}) == 1

    def test_expected_hits_average(self, small_tree):
        plan = QueryPlan.full(small_tree)
        assert expected_hits(plan, [{1, 2}, {3}]) == pytest.approx(1.5)

    def test_expected_hits_empty(self, small_tree):
        assert expected_hits(QueryPlan.full(small_tree), []) == 0.0


class TestBatchCountTopkHits:
    """The vectorized recursion must agree with the scalar counter."""

    def _random_case(self, seed):
        import numpy as np

        from repro.network.builder import random_topology

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 25))
        topology = random_topology(
            n, radio_range=max(25.0, 200.0 / n**0.5), rng=rng
        )
        bandwidths = {
            e: int(rng.integers(0, topology.subtree_size(e) + 2))
            for e in topology.edges
        }
        k = int(rng.integers(1, n + 1))
        ones = [
            frozenset(
                map(int, rng.choice(n, size=min(k, n), replace=False))
            )
            for _ in range(int(rng.integers(1, 8)))
        ]
        return topology, bandwidths, ones

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_scalar_counter(self, seed):
        import numpy as np

        from repro.plans.execution import (
            bandwidth_vector,
            batch_count_topk_hits,
            ones_to_matrix,
        )

        topology, bandwidths, ones = self._random_case(seed)
        plans = [
            QueryPlan(topology, bandwidths),
            QueryPlan(topology, {e: 0 for e in topology.edges}),
            QueryPlan.full(topology),
        ]
        stacked = np.stack([bandwidth_vector(p) for p in plans])
        batched = batch_count_topk_hits(
            topology, stacked, ones_to_matrix(topology.n, ones)
        )
        for row, plan in zip(batched, plans):
            scalar = [count_topk_hits(plan, set(o)) for o in ones]
            assert row.tolist() == scalar
