"""Unit and property tests for proof-carrying execution.

The headline property is the paper's Lemma 1: the values proven by any
node are exactly the largest values of its subtree.
"""

import pytest
from hypothesis import given, settings

from repro.errors import PlanError
from repro.plans.plan import QueryPlan, tag_readings
from repro.plans.proof_execution import execute_proof_plan
from tests.conftest import proof_plan_readings


class TestProofExecutionBasics:
    def test_rejects_zero_bandwidth(self, small_tree):
        bandwidths = {e: 1 for e in small_tree.edges}
        bandwidths[3] = 0
        broken = QueryPlan(small_tree, bandwidths)
        with pytest.raises(PlanError, match="bandwidth"):
            execute_proof_plan(broken, range(7))

    def test_full_plan_proves_everything(self, small_tree):
        result = execute_proof_plan(QueryPlan.full(small_tree), range(7))
        assert result.proven_count == 7
        assert len(result.returned) == 7

    def test_paper_figure_2_scenario(self):
        """The §1 example: a node receives (9,8,7,6,4), (8,6), (7,3)
        from three fully-reporting child subtrees plus its own value;
        with bandwidth 5 the first four values are provable but the
        fifth is not when the middle subtree might hold more."""
        from repro.network.topology import Topology

        # root 0 - relay 1; relay 1 has three chains below it
        # child A: chain of 5 (values 9,8,7,6,4), child B: 2 (8,6),
        # child C: 2 (7,3); relay's own value tiny
        parents = [-1, 0,
                   1, 2, 3, 4, 5,     # chain A: nodes 2..6
                   1, 7,              # chain B: nodes 7..8
                   1, 9]              # chain C: nodes 9..10
        topo = Topology(parents)
        values = [0.0, 0.1,
                  9.0, 8.0, 7.0, 6.0, 4.0,
                  8.5, 6.5,
                  7.5, 3.0]
        bandwidths = {e: topo.subtree_size(e) for e in topo.edges}
        bandwidths[7] = 2   # B reports all (size 2): values 8.5, 6.5
        bandwidths[9] = 1   # C reports only its top value: 7.5
        bandwidths[1] = 5   # the relay may pass up five values
        plan = QueryPlan(topo, bandwidths)
        result = execute_proof_plan(plan, values)
        returned = [v for v, __ in result.returned]
        assert returned[:5] == [9.0, 8.5, 8.0, 7.5, 7.0]
        # 9, 8.5, 8 are provable: every other subtree showed something
        # smaller; 7.5 is provable (C's own proven value); 7.0 is NOT:
        # C only reported one value, so it might hide something in (3,7.5)
        assert result.proven_count == 4

    def test_leaf_proves_its_own_value(self):
        from repro.network.topology import Topology

        topo = Topology([-1, 0])
        plan = QueryPlan(topo, {1: 1})
        result = execute_proof_plan(plan, [1.0, 2.0])
        assert result.proven_count == 2  # both values known and ordered

    def test_proven_count_field_charged_for_non_leaves(self, small_tree):
        plan = QueryPlan.full(small_tree)
        result = execute_proof_plan(plan, range(7))
        extra = {m.edge: m.extra_bytes for m in result.messages}
        for edge in small_tree.edges:
            if small_tree.is_leaf(edge):
                assert extra[edge] == 0
            else:
                assert extra[edge] > 0

    def test_states_recorded_for_every_node(self, small_tree):
        plan = QueryPlan.full(small_tree)
        result = execute_proof_plan(plan, range(7))
        assert set(result.states) == set(small_tree.nodes)
        for node in small_tree.nodes:
            state = result.states[node]
            subtree = set(small_tree.descendants(node))
            assert {n for __, n in state.retrieved} <= subtree


@settings(max_examples=150, deadline=None)
@given(proof_plan_readings())
def test_lemma_1_proven_values_are_subtree_top(data):
    """Lemma 1 at every node, for arbitrary proof plans and readings."""
    topology, bandwidths, readings = data
    plan = QueryPlan(topology, bandwidths)
    result = execute_proof_plan(plan, readings)
    tagged = tag_readings(readings)
    for node in topology.nodes:
        state = result.states[node]
        subtree_values = sorted(
            (tagged[d] for d in topology.descendants(node)), reverse=True
        )
        count = len(state.proven)
        assert state.proven == subtree_values[:count]


@settings(max_examples=100, deadline=None)
@given(proof_plan_readings())
def test_root_proven_prefix_is_global_top(data):
    topology, bandwidths, readings = data
    plan = QueryPlan(topology, bandwidths)
    result = execute_proof_plan(plan, readings)
    tagged = sorted(tag_readings(readings), reverse=True)
    assert result.proven == tagged[: result.proven_count]
    # the returned list is sorted and contains no duplicates
    assert result.returned == sorted(result.returned, reverse=True)
    nodes = [n for __, n in result.returned]
    assert len(nodes) == len(set(nodes))
