"""Tests for multi-query plan merging."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.network.builder import line_topology
from repro.network.energy import EnergyModel
from repro.plans.execution import execute_plan
from repro.plans.merge import merge_plans, merge_savings
from repro.plans.plan import QueryPlan
from tests.conftest import tree_with_readings

UNIFORM = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.2)


class TestMergePlans:
    def test_edgewise_maximum(self, small_tree):
        a = QueryPlan(small_tree, {1: 2, 3: 1})
        b = QueryPlan(small_tree, {1: 1, 5: 3})
        merged = merge_plans([a, b])
        assert merged.bandwidth(1) == 2
        assert merged.bandwidth(3) == 1
        assert merged.bandwidth(5) == 3

    def test_requires_plans(self):
        with pytest.raises(PlanError):
            merge_plans([])

    def test_rejects_mixed_topologies(self, small_tree):
        other = line_topology(7)
        with pytest.raises(PlanError, match="different topologies"):
            merge_plans([QueryPlan(small_tree, {}), QueryPlan(other, {})])

    def test_same_structure_accepted(self, small_tree):
        from repro.network.topology import Topology

        twin = Topology([-1, 0, 0, 1, 1, 2, 5])
        merged = merge_plans(
            [QueryPlan(small_tree, {1: 1}), QueryPlan(twin, {2: 2})]
        )
        assert merged.bandwidth(1) == 1 and merged.bandwidth(2) == 2

    def test_proof_flag_propagates(self, small_tree):
        ones = {e: 1 for e in small_tree.edges}
        proof = QueryPlan(small_tree, ones, requires_all_edges=True)
        merged = merge_plans([proof, QueryPlan(small_tree, {})])
        assert merged.requires_all_edges


class TestMergeSavings:
    def test_shared_messages_save_energy(self, small_tree):
        a = QueryPlan.naive_k(small_tree, 2)
        b = QueryPlan.naive_k(small_tree, 3)
        savings = merge_savings([a, b], UNIFORM)
        assert savings["merged_mj"] < savings["separate_mj"]
        # the merged plan is just the wider of the two here
        assert savings["merged_mj"] == pytest.approx(
            b.static_cost(UNIFORM)
        )
        assert 0.0 < savings["saved_fraction"] < 1.0

    def test_disjoint_plans_save_nothing(self, small_tree):
        a = QueryPlan(small_tree, {3: 1, 1: 1})
        b = QueryPlan(small_tree, {6: 1, 5: 1, 2: 1})
        savings = merge_savings([a, b], UNIFORM)
        assert savings["saved_mj"] == pytest.approx(0.0)


@settings(max_examples=80, deadline=None)
@given(tree_with_readings(), st.data(),
       st.integers(min_value=1, max_value=6))
def test_merged_plan_covers_every_upclosed_answer(data, draw, k):
    """One merged collection serves every constituent query: for any
    up-closed answer set (here: top-k sets of the epoch), the merged
    plan delivers at least as many answer values as each constituent."""
    from repro.plans.plan import top_k_set

    topology, readings = data
    plans = []
    for __ in range(draw.draw(st.integers(min_value=1, max_value=3))):
        bandwidths = {
            e: draw.draw(st.integers(min_value=0, max_value=3))
            for e in topology.edges
        }
        plans.append(QueryPlan(topology, bandwidths))
    merged = merge_plans(plans)
    truth = top_k_set(readings, k)
    merged_hits = len(execute_plan(merged, readings).returned_nodes & truth)
    for plan in plans:
        constituent = len(
            execute_plan(plan, readings).returned_nodes & truth
        )
        assert merged_hits >= constituent
