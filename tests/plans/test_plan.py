"""Unit tests for the QueryPlan representation."""

import pytest

from repro.errors import PlanError
from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.plans.plan import Message, QueryPlan, tag_readings, top_k_set


class TestHelpers:
    def test_tag_readings(self):
        assert tag_readings([3.0, 1.0]) == [(3.0, 0), (1.0, 1)]

    def test_top_k_set(self):
        assert top_k_set([5.0, 9.0, 1.0, 7.0], 2) == {1, 3}

    def test_top_k_ties_broken_by_node_id(self):
        # equal values: the higher node id ranks first
        assert top_k_set([4.0, 4.0, 4.0], 1) == {2}
        assert top_k_set([4.0, 4.0, 4.0], 2) == {1, 2}


class TestQueryPlanConstruction:
    def test_missing_edges_default_zero(self, small_tree):
        plan = QueryPlan(small_tree, {1: 2})
        assert plan.bandwidth(1) == 2
        assert plan.bandwidth(5) == 0

    def test_rejects_negative_bandwidth(self, small_tree):
        with pytest.raises(PlanError, match="negative"):
            QueryPlan(small_tree, {1: -1})

    def test_rejects_root_edge(self, small_tree):
        with pytest.raises(PlanError, match="unknown edge"):
            QueryPlan(small_tree, {0: 1})

    def test_rejects_unknown_edge(self, small_tree):
        with pytest.raises(PlanError, match="unknown edge"):
            QueryPlan(small_tree, {42: 1})

    def test_requires_all_edges_enforced(self, small_tree):
        with pytest.raises(PlanError, match="all edges"):
            QueryPlan(small_tree, {e: 0 for e in small_tree.edges},
                      requires_all_edges=True)
        plan = QueryPlan(small_tree, {e: 1 for e in small_tree.edges},
                         requires_all_edges=True)
        assert plan.requires_all_edges

    def test_from_chosen_nodes(self, small_tree):
        plan = QueryPlan.from_chosen_nodes(small_tree, {3, 6})
        assert plan.bandwidth(3) == 1
        assert plan.bandwidth(1) == 1
        assert plan.bandwidth(6) == 1
        assert plan.bandwidth(5) == 1
        assert plan.bandwidth(2) == 1
        assert plan.bandwidth(4) == 0
        # choosing the root adds no bandwidth anywhere
        same = QueryPlan.from_chosen_nodes(small_tree, {0, 3, 6})
        assert same.bandwidths == plan.bandwidths

    def test_from_chosen_nodes_shares_edges(self, small_tree):
        plan = QueryPlan.from_chosen_nodes(small_tree, {3, 4})
        assert plan.bandwidth(1) == 2

    def test_from_chosen_rejects_unknown(self, small_tree):
        with pytest.raises(PlanError, match="not in topology"):
            QueryPlan.from_chosen_nodes(small_tree, {99})

    def test_naive_k(self, small_tree):
        plan = QueryPlan.naive_k(small_tree, 2)
        assert plan.bandwidth(3) == 1  # leaf subtree of size 1
        assert plan.bandwidth(1) == 2  # subtree of size 3, capped at k
        with pytest.raises(PlanError):
            QueryPlan.naive_k(small_tree, 0)

    def test_full(self, small_tree):
        plan = QueryPlan.full(small_tree)
        assert plan.bandwidth(1) == 3
        assert plan.bandwidth(2) == 3


class TestPlanProperties:
    def test_used_edges_and_visited_nodes(self, small_tree):
        plan = QueryPlan(small_tree, {1: 1, 3: 1})
        assert set(plan.used_edges) == {1, 3}
        assert plan.visited_nodes == {0, 1, 3}

    def test_visited_excludes_cut_off_subtrees(self, small_tree):
        # node 6 has bandwidth but its ancestors do not
        plan = QueryPlan(small_tree, {6: 1})
        assert plan.visited_nodes == {0}

    def test_effective_bandwidth_clips_to_subtree(self, small_tree):
        plan = QueryPlan(small_tree, {1: 50})
        assert plan.effective_bandwidth(1) == 3

    def test_with_bandwidth_copies(self, small_tree):
        plan = QueryPlan(small_tree, {1: 1})
        other = plan.with_bandwidth(1, 3)
        assert plan.bandwidth(1) == 1
        assert other.bandwidth(1) == 3

    def test_equality_and_hash(self, small_tree):
        a = QueryPlan(small_tree, {1: 1})
        b = QueryPlan(small_tree, {1: 1})
        assert a == b and hash(a) == hash(b)
        assert a != QueryPlan(small_tree, {1: 2})
        assert a.__eq__(42) is NotImplemented

    def test_repr(self, small_tree):
        assert "edges_used=1" in repr(QueryPlan(small_tree, {1: 1}))


class TestCost:
    def test_static_cost_counts_messages_and_values(self, small_tree):
        energy = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.5)
        plan = QueryPlan(small_tree, {1: 2, 3: 1, 4: 1})
        # three messages; values: 1 + 1 + 2
        assert plan.static_cost(energy) == pytest.approx(3 * 1.0 + 4 * 0.5)

    def test_static_cost_ignores_cut_off_edges(self, small_tree):
        energy = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.0)
        plan = QueryPlan(small_tree, {6: 3})
        assert plan.static_cost(energy) == 0.0

    def test_static_cost_with_failures(self, small_tree):
        energy = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.0)
        failures = LinkFailureModel(
            failure_probability={1: 0.5}, reroute_extra_mj={1: 4.0}
        )
        plan = QueryPlan(small_tree, {1: 1})
        assert plan.static_cost(energy, failures) == pytest.approx(1.0 + 2.0)


class TestMessage:
    def test_unicast_cost(self):
        energy = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.25)
        assert Message(1, 4).cost(energy) == pytest.approx(2.0)

    def test_broadcast_cost(self):
        energy = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.25)
        message = Message(1, 0, kind="broadcast")
        assert message.cost(energy) == pytest.approx(0.5)

    def test_failure_penalty_only_on_unicast(self):
        energy = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.0)
        failures = LinkFailureModel(
            failure_probability={1: 1.0}, reroute_extra_mj={1: 3.0}
        )
        assert Message(1, 0).cost(energy, failures) == pytest.approx(4.0)
        broadcast = Message(1, 0, kind="broadcast")
        assert broadcast.cost(energy, failures) == pytest.approx(0.5)
