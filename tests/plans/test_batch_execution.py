"""Batch plan execution: the vectorized path equals the scalar oracle.

`execute_plan_batch` must be indistinguishable from running
`execute_plan` once per epoch — same returned values and owners (same
tie-breaking), same message log, same transmitted counts — for
arbitrary plans, trees and traces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.plans.execution import (
    batch_transmitted_counts,
    bandwidth_vector,
    execute_plan,
    execute_plan_batch,
)
from repro.plans.plan import QueryPlan
from tests.conftest import tree_plan_readings


@st.composite
def tree_plan_trace(draw, min_epochs: int = 1, max_epochs: int = 5):
    """Tree + arbitrary bandwidth plan + an (E, n) readings matrix."""
    topology, bandwidths, __ = draw(tree_plan_readings())
    epochs = draw(st.integers(min_value=min_epochs, max_value=max_epochs))
    matrix = draw(
        st.lists(
            st.lists(
                st.integers(min_value=-50, max_value=50),
                min_size=topology.n,
                max_size=topology.n,
            ),
            min_size=epochs,
            max_size=epochs,
        )
    )
    return topology, bandwidths, np.array(matrix, dtype=np.float64)


@settings(max_examples=120, deadline=None)
@given(tree_plan_trace())
def test_batch_equals_scalar_per_epoch(data):
    topology, bandwidths, matrix = data
    plan = QueryPlan(topology, bandwidths)
    batch = execute_plan_batch(plan, matrix)
    assert batch.num_epochs == matrix.shape[0]
    for epoch, readings in enumerate(matrix):
        scalar = execute_plan(plan, readings)
        got = list(
            zip(batch.returned_values[epoch], batch.returned_nodes[epoch])
        )
        assert [(float(v), int(u)) for v, u in got] == scalar.returned
        assert batch.messages == scalar.messages
        assert batch.transmitted == scalar.transmitted


@settings(max_examples=120, deadline=None)
@given(tree_plan_trace(max_epochs=3))
def test_transmitted_counts_match_execution(data):
    topology, bandwidths, matrix = data
    plan = QueryPlan(topology, bandwidths)
    counts, active = batch_transmitted_counts(
        topology, bandwidth_vector(plan)
    )
    result = execute_plan(plan, matrix[0])
    for edge in topology.edges:
        assert counts[0, edge] == result.transmitted.get(edge, 0)
    assert {
        node for node in topology.nodes if active[0, node]
    } == plan.visited_nodes


def test_priority_override_falls_back_to_scalar(small_tree):
    plan = QueryPlan.full(small_tree)
    rng = np.random.default_rng(0)
    matrix = rng.normal(size=(4, small_tree.n))
    target = 0.25

    def priority(reading):
        value, node = reading
        return (-abs(value - target), node)

    batch = execute_plan_batch(plan, matrix, priority=priority)
    for epoch, readings in enumerate(matrix):
        scalar = execute_plan(plan, readings, priority=priority)
        assert batch.epoch_result(epoch).returned == scalar.returned


def test_epoch_result_round_trip(small_tree):
    plan = QueryPlan.full(small_tree)
    matrix = np.arange(2 * small_tree.n, dtype=float).reshape(2, -1)
    batch = execute_plan_batch(plan, matrix)
    for epoch in (0, 1):
        scalar = execute_plan(plan, matrix[epoch])
        recovered = batch.epoch_result(epoch)
        assert recovered.returned == scalar.returned
        assert recovered.messages == scalar.messages
        assert recovered.transmitted == scalar.transmitted
    assert batch.top_k_node_sets(2) == [
        execute_plan(plan, row).top_k_nodes(2) for row in matrix
    ]
    assert batch.returned_node_sets() == [
        execute_plan(plan, row).returned_nodes for row in matrix
    ]


class TestShapeValidation:
    def test_rejects_one_dimensional_input(self, small_tree):
        plan = QueryPlan.full(small_tree)
        with pytest.raises(PlanError, match="2-D"):
            execute_plan_batch(plan, np.zeros(small_tree.n))

    def test_rejects_empty_trace(self, small_tree):
        plan = QueryPlan.full(small_tree)
        with pytest.raises(PlanError, match="at least one epoch"):
            execute_plan_batch(plan, np.zeros((0, small_tree.n)))

    def test_rejects_wrong_node_count(self, small_tree):
        plan = QueryPlan.full(small_tree)
        with pytest.raises(PlanError, match="nodes"):
            execute_plan_batch(plan, np.zeros((3, small_tree.n + 1)))
