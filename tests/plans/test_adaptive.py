"""Tests for adaptive threshold plans (§7 future work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError, SamplingError
from repro.network.energy import EnergyModel
from repro.plans.adaptive import (
    ThresholdPlan,
    ThresholdPlanner,
    execute_threshold_plan,
    expected_cost,
)
from repro.plans.plan import top_k_set
from tests.conftest import tree_with_readings

UNIFORM = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.2)


class TestExecution:
    def test_only_above_threshold_delivered(self, small_tree):
        readings = [0, 5, 1, 9, 2, 8, 3]
        plan = ThresholdPlan(small_tree, threshold=4.0, cap=10)
        result = execute_threshold_plan(plan, readings)
        # the root's own value arrives regardless; others must exceed
        assert result.returned_nodes == {0, 1, 3, 5}

    def test_threshold_is_strict(self, small_tree):
        plan = ThresholdPlan(small_tree, threshold=5.0, cap=10)
        result = execute_threshold_plan(plan, [0, 5, 0, 0, 0, 0, 0])
        assert 1 not in result.returned_nodes

    def test_quiet_nodes_send_nothing(self, small_tree):
        plan = ThresholdPlan(small_tree, threshold=100.0, cap=10)
        result = execute_threshold_plan(plan, range(7))
        assert result.messages == []
        assert result.silent_nodes == small_tree.n - 1
        assert result.returned_nodes == {0}

    def test_cap_limits_forwarding(self, small_tree):
        readings = [0, 50, 0, 60, 70, 0, 0]
        plan = ThresholdPlan(small_tree, threshold=10.0, cap=1)
        result = execute_threshold_plan(plan, readings)
        # node 1 may forward only its best observation (70 from node 4)
        assert 4 in result.returned_nodes
        assert 3 not in result.returned_nodes

    def test_rejects_bad_cap(self, small_tree):
        with pytest.raises(PlanError):
            ThresholdPlan(small_tree, threshold=0.0, cap=0)

    def test_cost_tracks_data(self, small_tree):
        plan = ThresholdPlan(small_tree, threshold=10.0, cap=5)
        quiet = execute_threshold_plan(plan, [0] * 7)
        loud = execute_threshold_plan(plan, [0, 20, 20, 20, 20, 20, 20])
        assert len(quiet.messages) == 0
        assert len(loud.messages) == small_tree.n - 1


class TestExpectedCost:
    def test_matches_replay(self, small_tree):
        rows = [[0, 20, 0, 0, 0, 0, 0], [0, 0, 0, 0, 0, 0, 20]]
        plan = ThresholdPlan(small_tree, threshold=10.0, cap=5)
        # row 1: one message (edge 1); row 2: three (6 -> 5 -> 2)
        per_message = UNIFORM.message_cost(1)
        expected = (per_message + 3 * per_message) / 2
        assert expected_cost(plan, rows, UNIFORM) == pytest.approx(expected)

    def test_needs_samples(self, small_tree):
        plan = ThresholdPlan(small_tree, threshold=0.0, cap=1)
        with pytest.raises(SamplingError):
            expected_cost(plan, [], UNIFORM)


class TestThresholdPlanner:
    def _samples(self, rng, n=7, m=20):
        return rng.normal(10, 3, size=(m, n))

    def test_expected_cost_fits_budget(self, small_tree, rng):
        samples = self._samples(rng)
        budget = 3.0
        plan = ThresholdPlanner().plan(small_tree, UNIFORM, samples, 3, budget)
        assert expected_cost(plan, samples, UNIFORM) <= budget + 1e-6

    def test_bigger_budget_lower_threshold(self, small_tree, rng):
        samples = self._samples(rng)
        planner = ThresholdPlanner()
        tight = planner.plan(small_tree, UNIFORM, samples, 3, budget=2.0)
        loose = planner.plan(small_tree, UNIFORM, samples, 3, budget=6.0)
        assert loose.threshold <= tight.threshold

    def test_huge_budget_forwards_everything(self, small_tree, rng):
        samples = self._samples(rng)
        plan = ThresholdPlanner().plan(
            small_tree, UNIFORM, samples, 3, budget=1e9
        )
        assert plan.threshold < samples.min()

    def test_impossible_budget_rejected(self, small_tree, rng):
        samples = self._samples(rng)
        charged = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.2)
        import dataclasses

        acq = dataclasses.replace(charged, acquisition_mj=1.0)
        with pytest.raises(PlanError, match="cannot cover"):
            ThresholdPlanner().plan(small_tree, acq, samples, 3, budget=1.0)

    def test_rejects_bad_inputs(self, small_tree, rng):
        with pytest.raises(PlanError):
            ThresholdPlanner().plan(small_tree, UNIFORM, [[1.0] * 7], 0, 1.0)
        with pytest.raises(SamplingError):
            ThresholdPlanner().plan(small_tree, UNIFORM, [], 3, 1.0)


class TestLocationShiftRobustness:
    def test_survives_moved_hotspot(self, small_tree):
        """The headline property: when the hot node moves, the
        threshold plan still catches it."""
        plan = ThresholdPlan(small_tree, threshold=50.0, cap=3)
        before = execute_threshold_plan(plan, [0, 99, 0, 0, 0, 0, 0])
        after = execute_threshold_plan(plan, [0, 0, 0, 0, 0, 0, 99])
        assert 1 in before.returned_nodes
        assert 6 in after.returned_nodes


@settings(max_examples=100, deadline=None)
@given(tree_with_readings(), st.integers(min_value=-20, max_value=20),
       st.integers(min_value=1, max_value=5))
def test_threshold_delivery_property(data, threshold, cap):
    """Everything delivered (beyond the root's own value) exceeds the
    threshold, and the exact top-k is delivered whenever k <= cap and
    the k-th value clears the threshold."""
    topology, readings = data
    plan = ThresholdPlan(topology, float(threshold), cap=cap)
    result = execute_threshold_plan(plan, readings)
    for value, node in result.returned:
        assert node == topology.root or value > threshold
    truth = top_k_set(readings, cap)
    kth = sorted((float(v) for v in readings), reverse=True)[
        min(cap, len(readings)) - 1
    ]
    if kth > threshold:
        assert truth <= result.returned_nodes
