"""Property tests for execution semantics.

The load-bearing one: the analytic tree recursion
(:func:`count_topk_hits`) agrees with actually executing the plan, for
*arbitrary* plans, trees and readings — the fact that makes the LP+LF
objective meaningful.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plans.execution import count_topk_hits, execute_plan
from repro.plans.plan import QueryPlan, top_k_set
from tests.conftest import tree_plan_readings, tree_with_readings


@settings(max_examples=150, deadline=None)
@given(tree_plan_readings(), st.integers(min_value=1, max_value=6))
def test_analytic_hits_equal_executed_hits(data, k):
    topology, bandwidths, readings = data
    plan = QueryPlan(topology, bandwidths)
    truth = top_k_set(readings, k)
    result = execute_plan(plan, readings)
    executed = len(result.returned_nodes & truth)
    assert executed == count_topk_hits(plan, truth)


@settings(max_examples=100, deadline=None)
@given(tree_plan_readings())
def test_returned_values_are_real_readings(data):
    topology, bandwidths, readings = data
    plan = QueryPlan(topology, bandwidths)
    result = execute_plan(plan, readings)
    for value, node in result.returned:
        assert readings[node] == value
    # no duplicates: each node contributes at most one value
    nodes = [node for __, node in result.returned]
    assert len(nodes) == len(set(nodes))
    # output sorted descending in the (value, node) total order
    assert result.returned == sorted(result.returned, reverse=True)


@settings(max_examples=100, deadline=None)
@given(tree_plan_readings())
def test_transmissions_respect_bandwidths(data):
    topology, bandwidths, readings = data
    plan = QueryPlan(topology, bandwidths)
    result = execute_plan(plan, readings)
    for edge, sent in result.transmitted.items():
        assert 0 <= sent <= plan.bandwidth(edge)
        assert sent <= topology.subtree_size(edge)


@settings(max_examples=80, deadline=None)
@given(tree_with_readings(), st.integers(min_value=1, max_value=5),
       st.data())
def test_accuracy_is_bandwidth_monotone(data, k, draw):
    """Raising any single edge's bandwidth never loses top-k hits."""
    topology, readings = data
    bandwidths = {
        edge: draw.draw(st.integers(min_value=0, max_value=3))
        for edge in topology.edges
    }
    plan = QueryPlan(topology, bandwidths)
    truth = top_k_set(readings, k)
    base_hits = count_topk_hits(plan, truth)
    edge = draw.draw(st.sampled_from(topology.edges))
    grown = plan.with_bandwidth(edge, bandwidths[edge] + 1)
    assert count_topk_hits(grown, truth) >= base_hits


@settings(max_examples=80, deadline=None)
@given(tree_with_readings(), st.integers(min_value=1, max_value=5))
def test_full_plan_is_perfect(data, k):
    topology, readings = data
    truth = top_k_set(readings, k)
    result = execute_plan(QueryPlan.full(topology), readings)
    assert truth <= result.returned_nodes
    assert result.top_k_nodes(min(k, topology.n)) == truth
