"""Tests for plan serialization."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.network.builder import line_topology
from repro.plans.plan import QueryPlan
from repro.plans.serialize import (
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
    topology_fingerprint,
)
from tests.conftest import tree_plan_readings


class TestRoundTrip:
    def test_dict_round_trip(self, small_tree):
        plan = QueryPlan(small_tree, {1: 2, 3: 1, 6: 4})
        restored = plan_from_dict(plan_to_dict(plan), small_tree)
        assert restored == plan

    def test_file_round_trip(self, small_tree, tmp_path):
        plan = QueryPlan.naive_k(small_tree, 3)
        path = tmp_path / "plan.json"
        save_plan(plan, path)
        assert load_plan(path, small_tree) == plan

    def test_zero_bandwidths_not_stored(self, small_tree):
        plan = QueryPlan(small_tree, {1: 2})
        data = plan_to_dict(plan)
        assert list(data["bandwidths"]) == ["1"]

    def test_proof_flag_preserved(self, small_tree):
        plan = QueryPlan(
            small_tree, {e: 1 for e in small_tree.edges},
            requires_all_edges=True,
        )
        restored = plan_from_dict(plan_to_dict(plan), small_tree)
        assert restored.requires_all_edges

    def test_json_serializable(self, small_tree):
        plan = QueryPlan.full(small_tree)
        json.dumps(plan_to_dict(plan))  # must not raise


class TestValidation:
    def test_wrong_topology_rejected(self, small_tree):
        plan = QueryPlan(small_tree, {1: 1})
        other = line_topology(7)
        with pytest.raises(PlanError, match="different topology"):
            plan_from_dict(plan_to_dict(plan), other)

    def test_fingerprint_is_structural(self, small_tree):
        from repro.network.topology import Topology

        same = Topology([-1, 0, 0, 1, 1, 2, 5])
        assert topology_fingerprint(small_tree) == topology_fingerprint(same)
        different = line_topology(7)
        assert topology_fingerprint(small_tree) != topology_fingerprint(
            different
        )

    def test_bad_version_rejected(self, small_tree):
        plan = QueryPlan(small_tree, {1: 1})
        data = plan_to_dict(plan)
        data["format_version"] = 99
        with pytest.raises(PlanError, match="version"):
            plan_from_dict(data, small_tree)

    def test_malformed_payload_rejected(self, small_tree):
        data = plan_to_dict(QueryPlan(small_tree, {1: 1}))
        del data["bandwidths"]
        with pytest.raises(PlanError, match="malformed"):
            plan_from_dict(data, small_tree)

    def test_missing_file(self, small_tree, tmp_path):
        with pytest.raises(PlanError, match="not found"):
            load_plan(tmp_path / "nope.json", small_tree)

    def test_invalid_json(self, small_tree, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(PlanError, match="valid JSON"):
            load_plan(path, small_tree)


@settings(max_examples=60, deadline=None)
@given(tree_plan_readings())
def test_round_trip_property(data):
    topology, bandwidths, __ = data
    plan = QueryPlan(topology, bandwidths)
    assert plan_from_dict(plan_to_dict(plan), topology) == plan
