"""Unit and property tests for the NAIVE-k / NAIVE-1 baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.plans.naive import naive_k_collect, naive_one_collect
from repro.plans.plan import top_k_set
from tests.conftest import tree_with_readings


class TestNaiveK:
    def test_exactness(self, small_tree):
        readings = [3, 9, 1, 7, 5, 8, 2]
        result = naive_k_collect(small_tree, readings, 3)
        assert {n for __, n in result.returned} == top_k_set(readings, 3)

    def test_returns_at_most_k(self, small_tree):
        result = naive_k_collect(small_tree, range(7), 4)
        assert len(result.returned) == 4

    def test_every_edge_sends_one_message(self, small_tree):
        result = naive_k_collect(small_tree, range(7), 2)
        assert len(result.messages) == small_tree.num_edges
        edges = {m.edge for m in result.messages}
        assert edges == set(small_tree.edges)

    def test_small_subtrees_send_everything(self, small_tree):
        result = naive_k_collect(small_tree, range(7), 5)
        assert result.transmitted[3] == 1
        assert result.transmitted[1] == 3  # whole subtree, below k


class TestNaiveOne:
    def test_exactness(self, small_tree):
        readings = [3, 9, 1, 7, 5, 8, 2]
        result = naive_one_collect(small_tree, readings, 3)
        assert {n for __, n in result.returned} == top_k_set(readings, 3)
        assert [v for v, __ in result.returned] == [9.0, 8.0, 7.0]

    def test_k_larger_than_network(self, small_tree):
        result = naive_one_collect(small_tree, range(7), 50)
        assert len(result.returned) == 7

    def test_rejects_bad_k(self, small_tree):
        with pytest.raises(PlanError):
            naive_one_collect(small_tree, range(7), 0)

    def test_single_value_messages(self, small_tree):
        result = naive_one_collect(small_tree, range(7), 3)
        assert all(m.num_values <= 1 for m in result.messages)

    def test_uses_more_messages_than_naive_k(self, medium_random, rng):
        readings = rng.normal(size=medium_random.n)
        k = 5
        pipelined = naive_one_collect(medium_random, readings, k)
        batch = naive_k_collect(medium_random, readings, k)
        assert len(pipelined.messages) > len(batch.messages)

    def test_transmits_fewer_values_than_naive_k(self, medium_random, rng):
        """The tradeoff of §2: NAIVE-1 minimizes values, NAIVE-k messages."""
        readings = rng.normal(size=medium_random.n)
        k = 3
        pipelined = naive_one_collect(medium_random, readings, k)
        batch = naive_k_collect(medium_random, readings, k)
        assert sum(pipelined.transmitted.values()) <= sum(
            batch.transmitted.values()
        )

    def test_value_message_bound(self, small_tree):
        """A node with fan-out f answers at most f + k' value messages
        (paper §2's bound on values received per node)."""
        readings = [3, 9, 1, 7, 5, 8, 2]
        k = 4
        result = naive_one_collect(small_tree, readings, k)
        for node in small_tree.nodes:
            if node == 0:
                continue
            received = sum(
                m.num_values
                for m in result.messages
                if m.edge in small_tree.children(node)
            )
            fan_out = len(small_tree.children(node))
            assert received <= fan_out + k


@settings(max_examples=100, deadline=None)
@given(tree_with_readings(), st.integers(min_value=1, max_value=8))
def test_both_naive_algorithms_are_exact(data, k):
    topology, readings = data
    truth = top_k_set(readings, k)
    for collect in (naive_k_collect, naive_one_collect):
        result = collect(topology, readings, k)
        assert {n for __, n in result.returned} == truth
