"""Tests for the benchmark perf-regression gate (benchmarks/regression_gate.py).

The gate is a stdlib-only script living outside the package, so it is
loaded by file path.  The acceptance bar from the ISSUE: the gate must
pass on the committed baselines and demonstrably fail when a 2x
slowdown is injected into a fresh payload.
"""

import importlib.util
import json
from pathlib import Path

import pytest

GATE_PATH = (
    Path(__file__).resolve().parents[1] / "benchmarks" / "regression_gate.py"
)


def _load_gate():
    spec = importlib.util.spec_from_file_location("regression_gate", GATE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


gate = _load_gate()


def payload(quick=False, simplex_speedup=6.0, highs_speedup=1.2):
    return {
        "benchmark": "lpsweep",
        "quick": quick,
        "rows": [
            {
                "backend": "pure-simplex",
                "budgets": 8,
                "warm_hits": 7,
                "sweep_s": 1.0,
                "cold_s": simplex_speedup,
                "speedup": simplex_speedup,
            },
            {
                "backend": "scipy-highs",
                "budgets": 8,
                "warm_hits": 0,
                "sweep_s": 0.08,
                "cold_s": 0.08 * highs_speedup,
                "speedup": highs_speedup,
            },
        ],
        "acceptance": {
            "simplex_sweep_speedup_min": 3.0,
            "enforced": not quick,
        },
    }


def write_pair(tmp_path, fresh, baseline):
    results = tmp_path / "results"
    baselines = tmp_path / "baselines"
    results.mkdir(exist_ok=True)
    baselines.mkdir(exist_ok=True)
    (results / "BENCH_lpsweep.json").write_text(json.dumps(fresh))
    suffix = ".quick.json" if baseline.get("quick") else ".json"
    (baselines / f"BENCH_lpsweep{suffix}").write_text(json.dumps(baseline))
    return results, baselines


class TestRowPairing:
    def test_string_fields_key_rows(self):
        rows = payload()["rows"]
        assert gate.row_key_fields(rows) == ["backend"]

    def test_int_fields_appended_until_unique(self):
        rows = [
            {"formulation": "lp-lf", "n": 20, "m": 10, "speedup_cold": 4.0},
            {"formulation": "lp-lf", "n": 60, "m": 25, "speedup_cold": 10.0},
            {"formulation": "lp-no-lf", "n": 20, "m": 10, "speedup_cold": 2.0},
        ]
        assert gate.row_key_fields(rows) == ["formulation", "n"]

    def test_only_speedup_fields_are_compared(self):
        rows = payload()["rows"]
        assert gate._ratio_fields(rows) == ["speedup"]


class TestComparePayload:
    def test_identical_payloads_pass(self):
        checks = gate.compare_payload(payload(), payload())
        assert checks
        assert all(c["passed"] for c in checks)

    def test_injected_2x_slowdown_fails(self):
        checks = gate.compare_payload(
            payload(simplex_speedup=3.0), payload(simplex_speedup=6.0)
        )
        failed = [c for c in checks if not c["passed"]]
        assert len(failed) == 1
        assert failed[0]["kind"] == "regression"
        assert failed[0]["metric"] == "speedup"
        assert "pure-simplex" in failed[0]["row"]

    def test_slowdown_within_tolerance_passes(self):
        checks = gate.compare_payload(
            payload(simplex_speedup=5.0), payload(simplex_speedup=6.0),
            tolerance=0.25,
        )
        assert all(c["passed"] for c in checks)

    def test_legacy_acceptance_minimum_enforced(self):
        # 2.0 survives the 25% regression bar against a 2.2 baseline but
        # violates the folded simplex_sweep_speedup_min of 3.0
        checks = gate.compare_payload(
            payload(simplex_speedup=2.0), payload(simplex_speedup=2.2)
        )
        failed = [c for c in checks if not c["passed"]]
        assert [c["kind"] for c in failed] == ["minimum"]
        assert failed[0]["limit"] == 3.0

    def test_baseline_acceptance_survives_fresh_edit(self):
        # dropping the bar from the fresh payload must not disable it:
        # the baseline copy is authoritative
        fresh = payload(simplex_speedup=2.0)
        fresh["acceptance"] = {"enforced": False}
        checks = gate.compare_payload(fresh, payload(simplex_speedup=2.2))
        assert any(
            c["kind"] == "minimum" and not c["passed"] for c in checks
        )

    def test_quick_payload_skips_unenforced_minima(self):
        checks = gate.compare_payload(
            payload(quick=True, simplex_speedup=2.0),
            payload(quick=True, simplex_speedup=2.0),
        )
        assert all(c["passed"] for c in checks)
        assert all(c["kind"] == "regression" for c in checks)

    def test_structured_minima_and_maxima(self):
        fresh = {
            "benchmark": "obs_overhead",
            "quick": False,
            "rows": [{"workload": "plan", "overhead_fraction": 0.05}],
            "acceptance": {
                "maxima": [{"metric": "overhead_fraction", "max": 0.02}],
                "enforced": True,
            },
        }
        checks = gate.compare_payload(fresh, fresh)
        (check,) = [c for c in checks if c["kind"] == "maximum"]
        assert not check["passed"]
        assert check["limit"] == 0.02

    def test_structured_where_selects_row(self):
        rows = [
            {"formulation": "lp-lf", "n": 20, "speedup_cold": 2.0},
            {"formulation": "lp-lf", "n": 60, "speedup_cold": 10.0},
        ]
        fresh = {
            "benchmark": "fastpath", "quick": False, "rows": rows,
            "acceptance": {
                "minima": [
                    {"metric": "speedup_cold",
                     "where": {"formulation": "lp-lf", "n": 60},
                     "min": 5.0}
                ],
                "enforced": True,
            },
        }
        checks = gate.compare_payload(fresh, fresh)
        minima = [c for c in checks if c["kind"] == "minimum"]
        assert len(minima) == 1  # only the n=60 row is held to the bar
        assert minima[0]["passed"]

    def test_missing_baseline_row_fails(self):
        fresh = payload()
        fresh["rows"] = fresh["rows"][:1]  # scipy-highs row vanished
        failed = [
            c for c in gate.compare_payload(fresh, payload())
            if not c["passed"]
        ]
        assert any("missing from fresh run" in c["detail"] for c in failed)

    def test_unmatched_acceptance_bar_is_a_coverage_failure(self):
        fresh = payload()
        fresh["acceptance"]["minima"] = [
            {"metric": "speedup", "where": {"backend": "gone"}, "min": 1.0}
        ]
        checks = gate.compare_payload(fresh, fresh)
        assert any(
            c["kind"] == "coverage" and not c["passed"] for c in checks
        )


class TestRunGate:
    def test_pass_and_exit_codes(self, tmp_path, capsys):
        results, baselines = write_pair(tmp_path, payload(), payload())
        code = gate.main(
            ["--results-dir", str(results), "--baseline-dir", str(baselines)]
        )
        assert code == 0
        assert "checks passed" in capsys.readouterr().out

    def test_injected_slowdown_exits_nonzero(self, tmp_path, capsys):
        results, baselines = write_pair(
            tmp_path, payload(simplex_speedup=3.0), payload(simplex_speedup=6.0)
        )
        code = gate.main(
            ["--results-dir", str(results), "--baseline-dir", str(baselines)]
        )
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_quick_flag_selects_quick_baseline(self, tmp_path):
        results, baselines = write_pair(
            tmp_path, payload(quick=True), payload(quick=True)
        )
        checks = gate.run_gate(results_dir=results, baseline_dir=baselines)
        assert checks and all(c["passed"] for c in checks)

    def test_mode_mismatch_fails(self, tmp_path):
        # a quick baseline cannot vouch for a full-size run
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir(), baselines.mkdir()
        (results / "BENCH_lpsweep.json").write_text(json.dumps(payload()))
        (baselines / "BENCH_lpsweep.json").write_text(
            json.dumps(payload(quick=True))
        )
        (check,) = gate.run_gate(results_dir=results, baseline_dir=baselines)
        assert not check["passed"]
        assert "quick flag" in check["detail"]

    def test_missing_baseline_fails(self, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir(), baselines.mkdir()
        (results / "BENCH_lpsweep.json").write_text(json.dumps(payload()))
        (check,) = gate.run_gate(results_dir=results, baseline_dir=baselines)
        assert not check["passed"]
        assert "no committed baseline" in check["detail"]

    def test_named_benchmark_without_result_fails(self, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir(), baselines.mkdir()
        (check,) = gate.run_gate(
            results_dir=results, baseline_dir=baselines, names=["lpsweep"]
        )
        assert not check["passed"]
        assert "run the benchmark first" in check["detail"]

    def test_empty_results_dir_fails_main(self, tmp_path, capsys):
        (tmp_path / "results").mkdir()
        code = gate.main(["--results-dir", str(tmp_path / "results")])
        assert code == 1


class TestCommittedBaselines:
    """The repo's own results/ and baselines/ must stay in agreement."""

    def test_committed_payloads_pass_the_gate(self):
        checks = gate.run_gate()
        assert checks
        bad = [c for c in checks if not c["passed"]]
        assert not bad, bad

    def test_every_benchmark_has_full_and_quick_baselines(self):
        names = {"batchsim", "lpsweep", "fastpath", "obs_overhead"}
        for name in names:
            assert (gate.DEFAULT_BASELINE_DIR / f"BENCH_{name}.json").exists()
            assert (
                gate.DEFAULT_BASELINE_DIR / f"BENCH_{name}.quick.json"
            ).exists()
