"""The stable :mod:`repro.api` facade."""

import numpy as np
import pytest

import repro.api as api
from repro.network.builder import line_topology
from repro.network.energy import EnergyModel
from repro.plans.plan import QueryPlan
from repro.sampling.matrix import SampleMatrix

PARENTS = [-1, 0, 0, 1, 1]


def test_facade_exports_the_promised_names():
    for name in (
        "connect",
        "open_session",
        "submit_query",
        "plan",
        "simulate",
    ):
        assert callable(getattr(api, name)), name


def test_service_half_end_to_end():
    client = api.connect()
    session = api.open_session(client, PARENTS, k=2, budget_mj=50.0)
    rng = np.random.default_rng(3)
    for __ in range(3):
        session.feed(rng.normal(25, 3, len(PARENTS)))
    readings = rng.normal(25, 3, len(PARENTS))
    reply = api.submit_query(session, readings)
    assert len(reply.nodes) == 2
    assert reply.energy_mj > 0


def test_open_session_accepts_topology_object_id_or_parents():
    client = api.connect()
    topology = line_topology(4)
    by_object = api.open_session(client, topology, k=1, budget_mj=40.0)
    topology_id = client.register_topology(topology)
    by_id = api.open_session(client, topology_id, k=1, budget_mj=40.0)
    by_parents = api.open_session(
        client, [-1, 0, 1, 2], k=1, budget_mj=40.0
    )
    opened = {by_object.session_id, by_id.session_id, by_parents.session_id}
    assert len(opened) == 3
    assert client.stats().topologies == 1  # all three are the same tree


@pytest.mark.parametrize("planner", ["greedy", "lp-lf", "lp-no-lf"])
def test_library_half_plan(planner):
    topology = line_topology(5)
    energy = EnergyModel.mica2()
    samples = np.random.default_rng(0).normal(25, 3, (6, 5))
    built = api.plan(
        topology, energy, samples, k=2, budget_mj=60.0, planner=planner
    )
    assert isinstance(built, QueryPlan)
    assert built.static_cost(energy) <= 60.0


def test_plan_accepts_ready_sample_matrix():
    topology = line_topology(5)
    samples = SampleMatrix(
        np.random.default_rng(0).normal(25, 3, (6, 5)), k=2
    )
    built = api.plan(
        topology, EnergyModel.mica2(), samples, k=2, budget_mj=60.0
    )
    assert isinstance(built, QueryPlan)


def test_plan_rejects_unknown_planner():
    with pytest.raises(ValueError, match="unknown planner"):
        api.plan(
            line_topology(4),
            EnergyModel.mica2(),
            np.ones((2, 4)),
            k=1,
            budget_mj=50.0,
            planner="quantum",
        )


def test_library_half_simulate():
    topology = line_topology(4)
    energy = EnergyModel.mica2()
    built = api.plan(
        topology,
        energy,
        np.random.default_rng(0).normal(25, 3, (5, 4)),
        k=2,
        budget_mj=60.0,
    )
    report = api.simulate(topology, energy, built, [4.0, 9.0, 2.0, 7.0])
    assert report.energy_mj > 0
    assert report.returned


def test_plan_and_simulate_compose_with_observability():
    from repro.obs import EnergyLedger, Instrumentation

    topology = line_topology(4)
    energy = EnergyModel.mica2()
    obs = Instrumentation()
    ledger = EnergyLedger(topology.n)
    built = api.plan(
        topology,
        energy,
        np.random.default_rng(0).normal(25, 3, (5, 4)),
        k=2,
        budget_mj=60.0,
        instrumentation=obs,
    )
    api.simulate(
        topology, energy, built, [4.0, 9.0, 2.0, 7.0],
        instrumentation=obs, ledger=ledger,
    )
    assert obs.counter("plan.builds").value == 1
    assert ledger.energy_mj.sum() > 0
