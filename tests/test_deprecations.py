"""Deprecation shims for the pre-1.1 positional construction style.

Each shim must fire its :class:`DeprecationWarning` exactly once per
construction, map the positional tail onto the right fields, and stay
silent for the keyword style.
"""

import warnings

import numpy as np
import pytest

from repro.network.builder import line_topology
from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.planners.base import PlannerConfig
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.planners.proof import ProofPlanner
from repro.simulation.batch import BatchSimulator
from repro.simulation.runtime import Simulator


def _one_deprecation(build):
    """Run ``build`` asserting exactly one DeprecationWarning; returns
    the built object."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        built = build()
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1, deprecations
    assert "deprecated" in str(deprecations[0].message)
    return built


def _silent(build):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        built = build()
    assert not [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    return built


# -- planners ---------------------------------------------------------------


@pytest.mark.parametrize(
    "planner_cls", [LPLFPlanner, LPNoLFPlanner, ProofPlanner]
)
def test_planner_positional_tail_warns_once(planner_cls):
    planner = _one_deprecation(lambda: planner_cls(False, False))
    assert planner.strict_budget is False
    assert planner.fill_budget is False


@pytest.mark.parametrize(
    "planner_cls", [LPLFPlanner, LPNoLFPlanner, ProofPlanner]
)
def test_planner_keywords_are_silent(planner_cls):
    planner = _silent(lambda: planner_cls(strict_budget=False))
    assert planner.strict_budget is False


def test_planner_config_object_is_silent():
    config = PlannerConfig(fill_budget=False, compiler="algebraic")
    planner = _silent(lambda: LPLFPlanner(config=config))
    assert planner.fill_budget is False
    assert planner.compiler == "algebraic"


def test_planner_keyword_overrides_beat_config():
    config = PlannerConfig(fill_budget=False)
    planner = _silent(
        lambda: LPLFPlanner(config=config, fill_budget=True)
    )
    assert planner.fill_budget is True


def test_planner_rejects_unknown_keywords():
    with pytest.raises(TypeError, match="unexpected keyword"):
        LPLFPlanner(frobnicate=True)


def test_planner_rejects_too_many_positionals():
    with pytest.raises(TypeError):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            LPLFPlanner(True, True, None, "fast", "extra")


def test_planner_rejects_unknown_compiler():
    with pytest.raises(ValueError, match="unknown compiler"):
        LPLFPlanner(compiler="quantum")


# -- simulators -------------------------------------------------------------


@pytest.mark.parametrize("simulator_cls", [Simulator, BatchSimulator])
def test_simulator_positional_tail_warns_once(simulator_cls):
    topology = line_topology(4)
    energy = EnergyModel.mica2()
    failures = LinkFailureModel.uniform(topology, 0.1, 2.0)
    rng = np.random.default_rng(5)
    simulator = _one_deprecation(
        lambda: simulator_cls(topology, energy, failures, rng)
    )
    assert simulator.failures is failures
    assert simulator.rng is rng
    assert simulator.instrumentation is None


@pytest.mark.parametrize("simulator_cls", [Simulator, BatchSimulator])
def test_simulator_keywords_are_silent(simulator_cls):
    topology = line_topology(4)
    simulator = _silent(
        lambda: simulator_cls(
            topology,
            EnergyModel.mica2(),
            failures=None,
            rng=np.random.default_rng(5),
        )
    )
    assert simulator.failures is None


@pytest.mark.parametrize("simulator_cls", [Simulator, BatchSimulator])
def test_simulator_rejects_too_many_positionals(simulator_cls):
    with pytest.raises(TypeError):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            simulator_cls(
                line_topology(4), EnergyModel.mica2(),
                None, None, None, None, "extra",
            )


def test_positional_and_keyword_styles_build_equivalent_simulators():
    """The shim maps positionals onto the same slots keywords fill."""
    topology = line_topology(4)
    energy = EnergyModel.mica2()
    readings = [4.0, 8.0, 2.0, 6.0]
    from repro.plans.plan import QueryPlan

    plan = QueryPlan.full(topology)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        old_style = Simulator(topology, energy, None)
    new_style = Simulator(topology, energy, failures=None)
    a = old_style.run_collection(plan, readings)
    b = new_style.run_collection(plan, readings)
    assert a.energy_mj == b.energy_mj
    assert a.returned == b.returned
