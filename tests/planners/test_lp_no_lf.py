"""Unit tests for PROSPECTOR LP−LF."""

import numpy as np
import pytest

from repro.network.builder import line_topology, star_topology, zoned_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.planners.greedy import GreedyPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.plans.execution import expected_hits
from repro.sampling.matrix import SampleMatrix

UNIFORM = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.1)


def make_context(topology, samples_array, k, budget):
    return PlanningContext(
        topology=topology,
        energy=UNIFORM,
        samples=SampleMatrix(samples_array, k),
        k=k,
        budget=budget,
    )


class TestLPNoLF:
    def test_fetches_the_obvious_winners(self):
        topo = star_topology(5)
        samples = np.array([[0, 9, 8, 1, 1], [0, 9.5, 8.5, 1, 2]])
        context = make_context(topo, samples, k=2, budget=2.5)
        plan = LPNoLFPlanner().plan(context)
        assert plan.bandwidth(1) == 1 and plan.bandwidth(2) == 1
        assert plan.bandwidth(3) == 0 and plan.bandwidth(4) == 0

    def test_budget_respected(self):
        topo = star_topology(8)
        rng = np.random.default_rng(0)
        samples = rng.normal(10, 3, size=(12, 8))
        for budget in (1.5, 3.0, 6.0):
            context = make_context(topo, samples, k=4, budget=budget)
            plan = LPNoLFPlanner().plan(context)
            assert context.plan_cost(plan) <= budget + 1e-9

    def test_topology_awareness_beats_greedy(self):
        """Clustered top values: LP shares path costs, greedy's strict
        count order strands its budget on scattered picks."""
        topo = zoned_topology(num_zones=2, zone_size=4, relay_hops=3)
        rng = np.random.default_rng(1)
        n = topo.n
        # zone-1 members alternate top-2 ranks with zone-2 members,
        # but a budget for one zone only exists
        members = [list(range(4, 8)), list(range(11, 15))]
        samples = np.zeros((10, n))
        for j in range(10):
            samples[j, members[0][j % 4]] = 50 + rng.random()
            samples[j, members[1][(j + 1) % 4]] = 50 + rng.random()
        context = make_context(topo, samples, k=2, budget=8.0)
        lp_plan = LPNoLFPlanner().plan(context)
        greedy_plan = GreedyPlanner().plan(context)
        ones = context.samples.ones_list()
        assert expected_hits(lp_plan, ones) >= expected_hits(greedy_plan, ones)

    def test_fill_budget_uses_leftover(self):
        topo = star_topology(6)
        samples = np.tile([0, 6, 5, 4, 3, 2], (4, 1)).astype(float)
        context = make_context(topo, samples, k=5, budget=3.5)
        filled = LPNoLFPlanner(fill_budget=True).plan(context)
        bare = LPNoLFPlanner(fill_budget=False).plan(context)
        assert len(filled.used_edges) >= len(bare.used_edges)
        assert context.plan_cost(filled) <= 3.5

    def test_loose_budget_fetches_everything_useful(self):
        topo = line_topology(5)
        samples = np.array([[0, 1, 2, 3, 4.0]] * 3)
        context = make_context(topo, samples, k=5, budget=1000.0)
        plan = LPNoLFPlanner().plan(context)
        assert plan.visited_nodes == set(topo.nodes)

    def test_non_strict_mode_obeys_2x_guarantee(self):
        topo = star_topology(10)
        rng = np.random.default_rng(3)
        samples = rng.normal(10, 5, size=(8, 10))
        budget = 4.0
        context = make_context(topo, samples, k=5, budget=budget)
        plan = LPNoLFPlanner(strict_budget=False).plan(context)
        assert context.plan_cost(plan) <= 2 * budget + 1e-9

    def test_build_model_shape(self):
        topo = line_topology(4)
        samples = np.array([[0, 1, 2, 3.0]])
        context = make_context(topo, samples, k=2, budget=5.0)
        model, x, y = LPNoLFPlanner().build_model(context)
        assert len(x) == 4 and len(y) == 3
        # path constraints: depth 1 + 2 + 3 = 6, plus one budget row
        assert model.num_constraints == 7
