"""Unit tests for the planning context."""

import numpy as np
import pytest

from repro.errors import BudgetError, SamplingError
from repro.network.builder import star_topology
from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.planners.base import PlanningContext
from repro.plans.plan import QueryPlan
from repro.sampling.matrix import SampleMatrix

UNIFORM = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.25)


@pytest.fixture
def topology():
    return star_topology(5)


@pytest.fixture
def samples():
    return SampleMatrix(np.random.default_rng(0).normal(size=(4, 5)), 2)


class TestValidation:
    def test_node_count_mismatch(self, topology):
        wrong = SampleMatrix(np.zeros((2, 3)), 1)
        with pytest.raises(SamplingError, match="covers"):
            PlanningContext(topology, UNIFORM, wrong, 1, 10.0)

    def test_bad_k(self, topology, samples):
        with pytest.raises(BudgetError):
            PlanningContext(topology, UNIFORM, samples, 0, 10.0)

    def test_negative_budget(self, topology, samples):
        with pytest.raises(BudgetError):
            PlanningContext(topology, UNIFORM, samples, 2, -1.0)


class TestCosts:
    def test_edge_cost_without_failures(self, topology, samples):
        context = PlanningContext(topology, UNIFORM, samples, 2, 10.0)
        assert context.edge_cost(1) == pytest.approx(1.0)
        assert context.per_value == pytest.approx(0.25)

    def test_edge_cost_inflated_by_failures(self, topology, samples):
        failures = LinkFailureModel(
            failure_probability={1: 0.5}, reroute_extra_mj={1: 4.0}
        )
        context = PlanningContext(
            topology, UNIFORM, samples, 2, 10.0, failures=failures
        )
        assert context.edge_cost(1) == pytest.approx(3.0)
        assert context.edge_cost(2) == pytest.approx(1.0)

    def test_plan_cost_matches_static_plus_failures(self, topology, samples):
        failures = LinkFailureModel(
            failure_probability={1: 1.0}, reroute_extra_mj={1: 2.0}
        )
        context = PlanningContext(
            topology, UNIFORM, samples, 2, 10.0, failures=failures
        )
        plan = QueryPlan(topology, {1: 1, 2: 1})
        base = QueryPlan(topology, {1: 1, 2: 1}).static_cost(UNIFORM)
        assert context.plan_cost(plan) == pytest.approx(base + 2.0)
