"""Unit tests for PROSPECTOR-Proof."""

import numpy as np
import pytest

from repro.errors import BudgetError
from repro.network.builder import line_topology, star_topology, random_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.planners.proof import ProofPlanner
from repro.plans.proof_execution import execute_proof_plan
from repro.sampling.matrix import SampleMatrix

UNIFORM = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.3)


def make_context(topology, samples_array, k, budget):
    return PlanningContext(
        topology=topology,
        energy=UNIFORM,
        samples=SampleMatrix(samples_array, k),
        k=k,
        budget=budget,
    )


class TestProofPlanner:
    def test_minimum_cost_matches_all_ones_plan(self):
        topo = star_topology(5)
        samples = np.zeros((2, 5))
        context = make_context(topo, samples, k=1, budget=100.0)
        planner = ProofPlanner()
        minimum = planner.minimum_cost(context)
        # star: 4 edges, all leaves, so no proven-count reserve
        assert minimum == pytest.approx(4 * (1.0 + 0.3))

    def test_budget_below_minimum_raises(self):
        topo = star_topology(5)
        samples = np.zeros((2, 5))
        context = make_context(topo, samples, k=1, budget=1.0)
        with pytest.raises(BudgetError, match="minimum"):
            ProofPlanner().plan(context)

    def test_plan_uses_every_edge(self):
        topo = random_topology(20, rng=np.random.default_rng(0), radio_range=40.0)
        rng = np.random.default_rng(1)
        samples = rng.normal(10, 3, size=(6, 20))
        context = make_context(topo, samples, k=3, budget=60.0)
        plan = ProofPlanner().plan(context)
        assert all(plan.bandwidth(e) >= 1 for e in topo.edges)
        assert plan.requires_all_edges

    def test_budget_respected(self):
        topo = random_topology(15, rng=np.random.default_rng(2), radio_range=45.0)
        rng = np.random.default_rng(3)
        samples = rng.normal(10, 3, size=(5, 15))
        planner = ProofPlanner()
        probe = make_context(topo, samples, k=3, budget=float("inf"))
        minimum = planner.minimum_cost(probe)
        for factor in (1.05, 1.3, 2.0):
            context = make_context(topo, samples, k=3, budget=minimum * factor)
            plan = planner.plan(context)
            assert context.plan_cost(plan) <= context.budget + 1e-9

    def test_generous_budget_proves_expected_topk(self):
        """With predictable samples and ample budget, executing the
        proof plan on a fresh draw proves at least k values."""
        topo = line_topology(6)
        base = np.array([1.0, 2.0, 3.0, 10.0, 20.0, 30.0])
        rng = np.random.default_rng(4)
        samples = base + rng.normal(0, 0.1, size=(8, 6))
        planner = ProofPlanner()
        probe = make_context(topo, samples, k=2, budget=float("inf"))
        context = make_context(
            topo, samples, k=2, budget=planner.minimum_cost(probe) * 2
        )
        plan = planner.plan(context)
        fresh = base + rng.normal(0, 0.1, size=6)
        result = execute_proof_plan(plan, fresh)
        assert result.proven_count >= 2

    def test_fill_budget_spends_allocation(self):
        topo = random_topology(12, rng=np.random.default_rng(5), radio_range=50.0)
        rng = np.random.default_rng(6)
        samples = rng.normal(10, 3, size=(5, 12))
        planner = ProofPlanner(fill_budget=True)
        probe = make_context(topo, samples, k=2, budget=float("inf"))
        minimum = planner.minimum_cost(probe)
        context = make_context(topo, samples, k=2, budget=minimum * 1.4)
        filled = planner.plan(context)
        bare = ProofPlanner().plan(context)
        assert sum(filled.bandwidths.values()) >= sum(bare.bandwidths.values())
        assert context.plan_cost(filled) <= context.budget

    def test_objective_upper_bounds_samples(self):
        """The LP optimum can never exceed m * k."""
        topo = line_topology(5)
        rng = np.random.default_rng(7)
        samples = rng.normal(0, 1, size=(4, 5))
        context = make_context(topo, samples, k=2, budget=100.0)
        model, __, __ = ProofPlanner().build_model(context)
        solution = model.solve()
        assert solution.objective <= 4 * 2 + 1e-6
