"""Unit tests for PROSPECTOR Greedy."""

import numpy as np
import pytest

from repro.network.builder import line_topology, star_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.planners.greedy import GreedyPlanner
from repro.sampling.matrix import SampleMatrix


def make_context(topology, samples_array, k, budget, energy=None):
    return PlanningContext(
        topology=topology,
        energy=energy or EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.1),
        samples=SampleMatrix(samples_array, k),
        k=k,
        budget=budget,
    )


class TestGreedy:
    def test_picks_highest_count_nodes_first(self):
        topo = star_topology(4)
        # node 3 always in the top-1, others never
        samples = np.array([[0, 1, 2, 9], [0, 2, 1, 9], [0, 1, 2, 9.5]])
        context = make_context(topo, samples, k=1, budget=1.2)
        plan = GreedyPlanner().plan(context)
        assert plan.bandwidth(3) == 1
        assert plan.bandwidth(1) == 0

    def test_respects_budget(self):
        topo = star_topology(6)
        samples = np.tile([0, 6, 5, 4, 3, 2], (4, 1)).astype(float)
        context = make_context(topo, samples, k=5, budget=2.3)
        plan = GreedyPlanner().plan(context)
        assert context.plan_cost(plan) <= 2.3
        # budget buys exactly two star edges at 1.1 each
        assert len(plan.used_edges) == 2
        assert plan.bandwidth(1) == 1 and plan.bandwidth(2) == 1

    def _count_order_scenario(self, budget):
        """Node 3 (deep, count 4) outranks node 1 (shallow, count 1);
        the budget affords only node 1."""
        from repro.network.topology import Topology

        topo = Topology([-1, 0, 0, 2])
        samples = np.array([[0, 1, 0, 9.0]] * 4 + [[0, 9, 0, 1.0]])
        return make_context(topo, samples, k=1, budget=budget)

    def test_strict_mode_stops_at_first_unaffordable(self):
        # the paper's greedy stops at the unaffordable top-count node,
        # even though a lower-count node would still fit
        context = self._count_order_scenario(budget=1.2)
        strict = GreedyPlanner(skip_unaffordable=False).plan(context)
        assert strict.used_edges == []

    def test_skip_mode_takes_cheaper_nodes(self):
        context = self._count_order_scenario(budget=1.2)
        relaxed = GreedyPlanner(skip_unaffordable=True).plan(context)
        assert relaxed.bandwidth(1) == 1  # node 1 is affordable

    def test_ignores_nodes_never_in_topk(self):
        topo = star_topology(4)
        samples = np.array([[0, 9, 8, 1], [0, 9, 8, 1]], dtype=float)
        context = make_context(topo, samples, k=2, budget=100.0)
        plan = GreedyPlanner().plan(context)
        assert plan.bandwidth(3) == 0

    def test_zero_budget_yields_empty_plan(self):
        topo = star_topology(3)
        samples = np.array([[0, 1, 2]], dtype=float)
        context = make_context(topo, samples, k=1, budget=0.0)
        plan = GreedyPlanner().plan(context)
        assert plan.used_edges == []
        assert context.plan_cost(plan) == 0.0

    def test_root_only_counts_are_free(self):
        # the root holding top values needs no communication
        topo = star_topology(3)
        samples = np.array([[9, 1, 2]], dtype=float)
        context = make_context(topo, samples, k=1, budget=0.0)
        plan = GreedyPlanner().plan(context)
        assert context.plan_cost(plan) == 0.0
