"""Unit and property tests for PROSPECTOR LP+LF."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.builder import line_topology, star_topology, zoned_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.plans.execution import count_topk_hits, expected_hits
from repro.sampling.matrix import SampleMatrix
from tests.conftest import tree_strategy

UNIFORM = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.3)


def make_context(topology, samples_array, k, budget):
    return PlanningContext(
        topology=topology,
        energy=UNIFORM,
        samples=SampleMatrix(samples_array, k),
        k=k,
        budget=budget,
    )


class TestLPLF:
    def test_budget_respected(self):
        topo = zoned_topology(2, 4, relay_hops=2)
        rng = np.random.default_rng(0)
        samples = rng.normal(10, 3, size=(10, topo.n))
        for budget in (4.0, 8.0, 16.0):
            context = make_context(topo, samples, k=3, budget=budget)
            plan = LPLFPlanner().plan(context)
            assert context.plan_cost(plan) <= budget + 1e-9

    def test_local_filtering_narrows_chain_bandwidth(self):
        """A zone where any 1 of 4 nodes can hold the top value: the
        LF plan visits all 4 but carries few values up the relay."""
        topo = zoned_topology(1, 4, relay_hops=3)
        members = list(range(4, 8))
        samples = np.zeros((8, topo.n))
        for j in range(8):
            samples[j, members[j % 4]] = 50.0
        context = make_context(topo, samples, k=1, budget=10.0)
        plan = LPLFPlanner().plan(context)
        # all members visited ...
        for member in members:
            assert plan.bandwidth(member) >= 1
        # ... but the relay chain carries fewer than the 4 values seen
        assert plan.bandwidth(1) < 4
        assert expected_hits(plan, context.samples.ones_list()) == pytest.approx(1.0)

    def test_beats_no_lf_under_negative_correlation(self):
        """The Figure 5 mechanism in miniature."""
        from repro.network.builder import zone_members

        topo = zoned_topology(2, 4, relay_hops=3)
        zones = zone_members(2, 4, relay_hops=3)
        rng = np.random.default_rng(2)
        samples = np.zeros((12, topo.n))
        for j in range(12):
            # exactly one winner per zone, rotating
            samples[j, zones[0][j % 4]] = 50 + rng.random()
            samples[j, zones[1][(j + 2) % 4]] = 50 + rng.random()
        budget = 16.0
        context = make_context(topo, samples, k=2, budget=budget)
        lf = LPLFPlanner().plan(context)
        no_lf = LPNoLFPlanner().plan(context)
        ones = context.samples.ones_list()
        assert expected_hits(lf, ones) >= expected_hits(no_lf, ones)

    def test_lp_objective_matches_execution_on_integral_solution(self):
        """When the LP happens to return integral bandwidths, its
        objective equals the total executed hit count over samples."""
        topo = star_topology(5)
        samples = np.array([[0, 9, 8, 1, 1], [0, 1, 8, 9, 1.0]])
        context = make_context(topo, samples, k=2, budget=100.0)
        planner = LPLFPlanner()
        model, b, __, __ = planner.build_model(context)
        solution = model.solve()
        bandwidths = {e: solution.value(b[e]) for e in topo.edges}
        assert all(abs(v - round(v)) < 1e-6 for v in bandwidths.values())
        from repro.plans.plan import QueryPlan

        plan = QueryPlan(topo, {e: int(round(v)) for e, v in bandwidths.items()})
        total = sum(
            count_topk_hits(plan, context.samples.ones(j))
            for j in range(context.samples.num_samples)
        )
        assert solution.objective == pytest.approx(total)

    def test_fill_budget_improves_or_matches(self):
        topo = zoned_topology(2, 3, relay_hops=2)
        rng = np.random.default_rng(5)
        samples = rng.normal(20, 6, size=(10, topo.n))
        context = make_context(topo, samples, k=3, budget=10.0)
        ones = context.samples.ones_list()
        filled = LPLFPlanner(fill_budget=True).plan(context)
        bare = LPLFPlanner(fill_budget=False).plan(context)
        assert expected_hits(filled, ones) >= expected_hits(bare, ones)
        assert context.plan_cost(filled) <= 10.0

    def test_zero_budget(self):
        topo = line_topology(3)
        samples = np.array([[0, 1, 2.0]])
        context = make_context(topo, samples, k=1, budget=0.0)
        plan = LPLFPlanner().plan(context)
        assert context.plan_cost(plan) == 0.0


@settings(max_examples=25, deadline=None)
@given(tree_strategy(min_nodes=3, max_nodes=8),
       st.integers(min_value=1, max_value=3),
       st.floats(min_value=0.0, max_value=20.0))
def test_budget_never_exceeded_property(topology, k, budget):
    rng = np.random.default_rng(17)
    samples = rng.normal(10, 4, size=(5, topology.n))
    context = make_context(topology, samples, k=k, budget=budget)
    plan = LPLFPlanner().plan(context)
    assert context.plan_cost(plan) <= budget + 1e-9
