"""Unit tests for LP rounding, repair, and budget-fill utilities."""

import pytest

from repro.network.builder import line_topology, star_topology
from repro.network.energy import EnergyModel
from repro.planners.rounding import (
    fill_bandwidths,
    fill_chosen_nodes,
    repair_bandwidths,
    repair_chosen_nodes,
    round_bandwidth,
    round_indicator,
)
from repro.plans.execution import count_topk_hits
from repro.plans.plan import QueryPlan

UNIFORM = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.1)


def cost(plan):
    return plan.static_cost(UNIFORM)


class TestRoundingPrimitives:
    def test_round_indicator_half_threshold(self):
        assert round_indicator(0.5) == 1
        assert round_indicator(0.49) == 0
        assert round_indicator(1.0) == 1
        assert round_indicator(0.7, threshold=0.8) == 0

    def test_round_bandwidth_half_up(self):
        assert round_bandwidth(0.4) == 0
        assert round_bandwidth(0.5) == 1
        assert round_bandwidth(2.49) == 2
        assert round_bandwidth(-0.2) == 0


class TestRepairChosenNodes:
    def test_noop_when_within_budget(self):
        topo = star_topology(4)
        plan, kept = repair_chosen_nodes(
            [0, 1, 2],
            scores=[0, 5, 3, 1],
            build_plan=lambda keep: QueryPlan.from_chosen_nodes(topo, keep),
            cost_of=cost,
            budget=100.0,
        )
        assert kept == {0, 1, 2}

    def test_drops_lowest_scores_first(self):
        topo = star_topology(4)
        plan, kept = repair_chosen_nodes(
            [0, 1, 2, 3],
            scores=[0, 5, 3, 9],
            build_plan=lambda keep: QueryPlan.from_chosen_nodes(topo, keep),
            cost_of=cost,
            budget=2.3,  # two star edges at 1.1
            protected=frozenset({0}),
        )
        assert kept == {0, 1, 3}  # node 2 (score 3) dropped before 1 and 3
        assert cost(plan) <= 2.3

    def test_protected_nodes_survive(self):
        topo = star_topology(3)
        __, kept = repair_chosen_nodes(
            [0, 1, 2],
            scores=[0, 1, 2],
            build_plan=lambda keep: QueryPlan.from_chosen_nodes(topo, keep),
            cost_of=cost,
            budget=0.0,
            protected=frozenset({0}),
        )
        assert kept == {0}


class TestRepairBandwidths:
    def test_clips_over_allocation(self, small_tree):
        plan = QueryPlan(small_tree, {1: 99})
        repaired = repair_bandwidths(plan, [], cost_of=cost, budget=100.0)
        assert repaired.bandwidth(1) == small_tree.subtree_size(1)

    def test_prefers_free_decrements(self, small_tree):
        # edge 2 never carries a top value; it should shed first
        ones = [{3}, {4}]
        plan = QueryPlan(small_tree, {1: 2, 3: 1, 4: 1, 2: 1})
        repaired = repair_bandwidths(
            plan, ones, cost_of=cost, budget=cost(plan) - 1.0
        )
        assert repaired.bandwidth(2) == 0
        hits = sum(count_topk_hits(repaired, o) for o in ones)
        assert hits == 2

    def test_respects_min_bandwidth(self):
        topo = line_topology(3)
        plan = QueryPlan(topo, {1: 2, 2: 2}, requires_all_edges=True)
        repaired = repair_bandwidths(
            plan, [], cost_of=cost, budget=0.0, min_bandwidth=1
        )
        assert repaired.bandwidth(1) == 1
        assert repaired.bandwidth(2) == 1  # floor reached; budget unmet

    def test_budget_reached_when_feasible(self, small_tree):
        ones = [{3, 4, 6}]
        plan = QueryPlan.full(small_tree)
        target = cost(plan) * 0.5
        repaired = repair_bandwidths(plan, ones, cost_of=cost, budget=target)
        assert cost(repaired) <= target


class TestFills:
    def test_fill_chosen_nodes_adds_affordable(self):
        topo = star_topology(5)
        chosen = {0}
        plan = fill_chosen_nodes(
            chosen,
            priorities=[0.0, 0.9, 0.8, 0.0, 0.7],
            build_plan=lambda keep: QueryPlan.from_chosen_nodes(topo, keep),
            cost_of=cost,
            budget=2.3,
        )
        assert chosen == {0, 1, 2}  # two fit; zero-priority nodes skipped
        assert cost(plan) <= 2.3

    def test_fill_bandwidths_opens_paths(self):
        """Filling must open whole root paths, not only single edges."""
        topo = line_topology(4)
        plan = QueryPlan(topo, {})
        ones = [{3}] * 3
        filled = fill_bandwidths(plan, ones, cost_of=cost, budget=10.0)
        assert count_topk_hits(filled, {3}) == 1

    def test_fill_bandwidths_stops_at_budget(self, small_tree):
        plan = QueryPlan(small_tree, {})
        ones = [set(small_tree.nodes)]
        filled = fill_bandwidths(plan, ones, cost_of=cost, budget=3.0)
        assert cost(filled) <= 3.0

    def test_fill_bandwidths_noop_without_gain(self, small_tree):
        plan = QueryPlan.full(small_tree)
        filled = fill_bandwidths(plan, [{1}], cost_of=cost, budget=1e9)
        assert filled.bandwidths == plan.bandwidths
