"""Tests for acquisition-cost modeling (paper §4.4 "Modeling Other Costs")."""

import dataclasses

import numpy as np
import pytest

from repro.network.builder import star_topology, zoned_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.planners.proof import ProofPlanner
from repro.plans.plan import QueryPlan
from repro.sampling.matrix import SampleMatrix
from repro.simulation.runtime import Simulator

BASE = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.2)
WITH_ACQ = dataclasses.replace(BASE, acquisition_mj=0.5)


def make_context(topology, samples_array, k, budget, energy):
    return PlanningContext(
        topology=topology,
        energy=energy,
        samples=SampleMatrix(samples_array, k),
        k=k,
        budget=budget,
    )


class TestPlanCost:
    def test_plan_cost_includes_visited_acquisitions(self, small_tree):
        plan = QueryPlan.from_chosen_nodes(small_tree, {3})  # visits 0,1,3
        samples = np.zeros((1, 7))
        free = make_context(small_tree, samples, 1, 100.0, BASE)
        charged = make_context(small_tree, samples, 1, 100.0, WITH_ACQ)
        assert charged.plan_cost(plan) == pytest.approx(
            free.plan_cost(plan) + 0.5 * 3
        )

    def test_empty_plan_still_charges_root(self, small_tree):
        plan = QueryPlan(small_tree, {})
        samples = np.zeros((1, 7))
        charged = make_context(small_tree, samples, 1, 100.0, WITH_ACQ)
        assert charged.plan_cost(plan) == pytest.approx(0.5)


class TestPlannersRespectAcquisition:
    def test_lp_no_lf_budget_includes_acquisition(self):
        topo = star_topology(8)
        rng = np.random.default_rng(0)
        samples = rng.normal(10, 3, size=(10, 8))
        budget = 6.0
        context = make_context(topo, samples, 4, budget, WITH_ACQ)
        plan = LPNoLFPlanner().plan(context)
        assert context.plan_cost(plan) <= budget + 1e-9
        # acquisition shrinks how many nodes fit the same budget
        free = make_context(topo, samples, 4, budget, BASE)
        free_plan = LPNoLFPlanner().plan(free)
        assert len(plan.visited_nodes) <= len(free_plan.visited_nodes)

    def test_lp_lf_budget_includes_acquisition(self):
        topo = zoned_topology(2, 4, relay_hops=2)
        rng = np.random.default_rng(1)
        samples = rng.normal(10, 3, size=(8, topo.n))
        budget = 12.0
        context = make_context(topo, samples, 3, budget, WITH_ACQ)
        plan = LPLFPlanner().plan(context)
        assert context.plan_cost(plan) <= budget + 1e-9

    def test_proof_minimum_includes_acquisition(self):
        topo = star_topology(5)
        samples = np.zeros((2, 5))
        free = make_context(topo, samples, 1, 100.0, BASE)
        charged = make_context(topo, samples, 1, 100.0, WITH_ACQ)
        planner = ProofPlanner()
        assert planner.minimum_cost(charged) == pytest.approx(
            planner.minimum_cost(free) + 0.5 * 5
        )

    def test_proof_plan_respects_budget_with_acquisition(self):
        topo = zoned_topology(2, 3, relay_hops=2)
        rng = np.random.default_rng(2)
        samples = rng.normal(10, 3, size=(5, topo.n))
        planner = ProofPlanner()
        probe = make_context(topo, samples, 2, float("inf"), WITH_ACQ)
        budget = planner.minimum_cost(probe) * 1.3
        context = make_context(topo, samples, 2, budget, WITH_ACQ)
        plan = planner.plan(context)
        assert context.plan_cost(plan) <= budget + 1e-9


class TestSimulatorCharges:
    def test_collection_charges_visited(self, small_tree, rng):
        plan = QueryPlan.from_chosen_nodes(small_tree, {3})
        readings = rng.normal(size=7)
        free = Simulator(small_tree, BASE).run_collection(
            plan, readings, include_trigger=False
        )
        charged = Simulator(small_tree, WITH_ACQ).run_collection(
            plan, readings, include_trigger=False
        )
        assert charged.energy_mj == pytest.approx(free.energy_mj + 0.5 * 3)

    def test_naive_k_charges_everyone(self, small_tree, rng):
        readings = rng.normal(size=7)
        free = Simulator(small_tree, BASE).run_naive_k(readings, 2)
        charged = Simulator(small_tree, WITH_ACQ).run_naive_k(readings, 2)
        assert charged.energy_mj == pytest.approx(free.energy_mj + 0.5 * 7)

    def test_naive_one_charges_asked_nodes(self, small_tree, rng):
        # the pipelined protocol needs one candidate per child before it
        # can pop anything, so the first request reaches every node
        readings = np.array([9.0, 1, 2, 3, 4, 5, 6])
        free = Simulator(small_tree, BASE).run_naive_one(readings, 1)
        charged = Simulator(small_tree, WITH_ACQ).run_naive_one(readings, 1)
        asked = {m.edge for m in free.detail.messages} | {0}
        assert asked == set(small_tree.nodes)
        assert charged.energy_mj == pytest.approx(
            free.energy_mj + 0.5 * len(asked)
        )
