"""Unit and property tests for the ORACLE baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.network.energy import EnergyModel
from repro.planners.oracle import OraclePlanner, OracleProofPlanner
from repro.plans.execution import execute_plan
from repro.plans.plan import QueryPlan, top_k_set
from repro.plans.proof_execution import execute_proof_plan
from tests.conftest import tree_with_readings

UNIFORM = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.1)


class TestOracle:
    def test_fetches_exactly_the_topk(self, medium_random, rng):
        readings = rng.normal(20, 5, size=medium_random.n)
        k = 4
        plan = OraclePlanner().plan_for_readings(medium_random, readings, k)
        result = execute_plan(plan, readings)
        assert top_k_set(readings, k) <= result.returned_nodes

    def test_cost_grows_with_j(self, medium_random, rng):
        readings = rng.normal(20, 5, size=medium_random.n)
        oracle = OraclePlanner()
        costs = [
            oracle.plan_for_readings(medium_random, readings, j).static_cost(UNIFORM)
            for j in range(1, 6)
        ]
        assert costs == sorted(costs)

    def test_rejects_bad_j(self, small_tree):
        with pytest.raises(PlanError):
            OraclePlanner().plan_for_readings(small_tree, range(7), 0)

    def test_oracle_is_cheapest_way_to_the_answer(self, small_tree):
        """No plan returning the full top-k can cost less than a plan
        touching only the top-k nodes' paths (spot check)."""
        readings = [0, 5, 1, 9, 2, 8, 3]
        k = 2
        oracle_plan = OraclePlanner().plan_for_readings(small_tree, readings, k)
        oracle_cost = oracle_plan.static_cost(UNIFORM)
        naive_cost = QueryPlan.naive_k(small_tree, k).static_cost(UNIFORM)
        assert oracle_cost < naive_cost


class TestOracleProof:
    def test_proves_at_least_k(self, medium_random, rng):
        readings = rng.normal(20, 5, size=medium_random.n)
        k = 5
        plan = OracleProofPlanner().plan_for_readings(medium_random, readings, k)
        result = execute_proof_plan(plan, readings)
        assert result.proven_count >= k
        assert {n for __, n in result.proven[:k]} == top_k_set(readings, k)

    def test_uses_every_edge(self, small_tree):
        plan = OracleProofPlanner().plan_for_readings(small_tree, range(7), 2)
        assert all(plan.bandwidth(e) >= 1 for e in small_tree.edges)

    def test_cheaper_than_naive_k_for_clustered_topk(self):
        from repro.network.builder import zoned_topology

        topo = zoned_topology(2, 6, relay_hops=3)
        readings = np.zeros(topo.n)
        readings[4:10] = 50  # all top values in zone 1
        k = 5
        proof = OracleProofPlanner().plan_for_readings(topo, readings, k)
        naive = QueryPlan.naive_k(topo, k)
        assert proof.static_cost(UNIFORM) < naive.static_cost(UNIFORM)

    def test_rejects_bad_k(self, small_tree):
        with pytest.raises(PlanError):
            OracleProofPlanner().plan_for_readings(small_tree, range(7), 0)


@settings(max_examples=100, deadline=None)
@given(tree_with_readings(), st.integers(min_value=1, max_value=6))
def test_oracle_proof_always_proves_k(data, k):
    """The witness-slot construction proves the top-k on any tree."""
    topology, readings = data
    k = min(k, topology.n)
    plan = OracleProofPlanner().plan_for_readings(topology, readings, k)
    result = execute_proof_plan(plan, readings)
    assert result.proven_count >= k
