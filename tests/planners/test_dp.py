"""Tests for the DP alternative to LP−LF (paper footnote 1)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BudgetError
from repro.network.builder import line_topology, star_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.planners.dp import DPPlanner
from repro.planners.greedy import GreedyPlanner
from repro.plans.plan import QueryPlan
from repro.sampling.matrix import SampleMatrix
from tests.conftest import tree_strategy

UNIFORM = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.3)


def make_context(topology, samples_array, k, budget):
    return PlanningContext(
        topology=topology,
        energy=UNIFORM,
        samples=SampleMatrix(samples_array, k),
        k=k,
        budget=budget,
    )


def brute_force_best(context):
    """Exhaustive optimum of the integral LP−LF problem."""
    topology = context.topology
    counts = context.samples.column_counts()
    nodes = [n for n in topology.nodes if n != topology.root]
    best = 0
    for r in range(len(nodes) + 1):
        for subset in itertools.combinations(nodes, r):
            plan = QueryPlan.from_chosen_nodes(topology, set(subset))
            if context.plan_cost(plan) <= context.budget + 1e-9:
                value = int(counts[list(subset)].sum()) if subset else 0
                best = max(best, value)
    return best


class TestDPPlanner:
    def test_validation(self):
        with pytest.raises(BudgetError):
            DPPlanner(buckets=0)

    def test_zero_budget(self):
        topo = star_topology(4)
        context = make_context(topo, np.ones((2, 4)), 1, budget=0.0)
        plan = DPPlanner().plan(context)
        assert plan.used_edges == []

    def test_budget_respected(self):
        topo = star_topology(8)
        rng = np.random.default_rng(0)
        samples = rng.normal(10, 4, size=(10, 8))
        for budget in (1.5, 3.0, 6.0):
            context = make_context(topo, samples, 3, budget)
            plan = DPPlanner().plan(context)
            assert context.plan_cost(plan) <= budget + 1e-9

    def test_prefers_shared_paths(self):
        # two hot leaves under one relay vs one equally hot isolated
        # leaf: the shared activation makes the pair the better buy
        from repro.network.topology import Topology

        topo = Topology([-1, 0, 1, 1, 0])
        samples = np.zeros((4, 5))
        samples[:, 2] = 10.0
        samples[:, 3] = 9.0
        samples[:1, 4] = 11.0
        # {2,3} costs 4.2 (3 edges + 2 deep values) for count 7;
        # {2,4} costs 3.9 for count 5: the shared relay wins
        context = make_context(topo, samples, 2, budget=4.5)
        plan = DPPlanner().plan(context)
        assert plan.bandwidth(2) == 1 and plan.bandwidth(3) == 1
        assert plan.bandwidth(4) == 0

    def test_matches_brute_force_on_small_instances(self):
        rng = np.random.default_rng(1)
        from repro.network.topology import Topology

        for parents in ([-1, 0, 0, 1, 1], [-1, 0, 1, 2, 0, 4]):
            topo = Topology(parents)
            samples = rng.normal(5, 3, size=(6, topo.n))
            context = make_context(topo, samples, 2, budget=4.0)
            counts = context.samples.column_counts()
            plan = DPPlanner(buckets=400).plan(context)
            achieved = sum(
                counts[n]
                for n in plan.visited_nodes
                if plan.bandwidths.get(n, 0) > 0 or n == 0
            )
            # count covered nodes properly: a node is covered when its
            # own value flows (bandwidth accounts for descendants too),
            # so recompute from the chosen set encoded in bandwidths
            chosen = {
                n
                for n in topo.nodes
                if n != 0
                and plan.bandwidths[n]
                == 1 + sum(plan.bandwidths[c] for c in topo.children(n))
            }
            value = int(counts[list(chosen)].sum()) if chosen else 0
            assert value >= brute_force_best(context) - 1  # quantization slack

    def test_at_least_greedy_on_chain(self):
        topo = line_topology(6)
        rng = np.random.default_rng(3)
        samples = rng.normal(8, 4, size=(8, 6))
        context = make_context(topo, samples, 2, budget=6.0)
        counts = context.samples.column_counts()

        def covered(plan):
            total = 0
            for node in topo.nodes:
                if node == 0:
                    continue
                expected = 1 + sum(
                    plan.bandwidths[c] for c in topo.children(node)
                )
                if plan.bandwidths[node] == expected and node in plan.visited_nodes:
                    total += counts[node]
            return total

        dp_plan = DPPlanner(buckets=300).plan(context)
        greedy_plan = GreedyPlanner().plan(context)
        assert covered(dp_plan) >= covered(greedy_plan)


@settings(max_examples=30, deadline=None)
@given(tree_strategy(min_nodes=2, max_nodes=8),
       st.integers(min_value=0, max_value=2**32 - 1),
       st.floats(min_value=0.5, max_value=8.0))
def test_dp_always_feasible(topology, seed, budget):
    rng = np.random.default_rng(seed)
    samples = rng.normal(5, 3, size=(4, topology.n))
    context = make_context(topology, samples, 2, budget)
    plan = DPPlanner(buckets=80).plan(context)
    assert context.plan_cost(plan) <= budget + 1e-9
