"""Unit and property tests for PROSPECTOR-Exact and its mop-up phase.

The central property: regardless of topology, readings, phase-1 plan,
or how wrong the samples were, the algorithm returns the exact top-k.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.network.builder import line_topology, random_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.planners.exact import ExactTopK, mop_up
from repro.planners.proof import ProofPlanner
from repro.plans.plan import QueryPlan, top_k_set
from repro.plans.proof_execution import execute_proof_plan
from repro.sampling.matrix import SampleMatrix
from tests.conftest import proof_plan_readings

UNIFORM = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.3)


class TestExactTopK:
    def test_run_with_minimal_plan_is_exact(self, medium_random, rng):
        readings = rng.normal(25, 8, size=medium_random.n)
        plan = QueryPlan(
            medium_random,
            {e: 1 for e in medium_random.edges},
            requires_all_edges=True,
        )
        outcome = ExactTopK().run_with_plan(plan, 5, readings)
        assert outcome.answer_nodes() == top_k_set(readings, 5)
        assert outcome.used_mop_up  # bandwidth 1 cannot prove 5 values

    def test_no_mop_up_when_phase1_proves_k(self, medium_random, rng):
        readings = rng.normal(25, 8, size=medium_random.n)
        outcome = ExactTopK().run_with_plan(
            QueryPlan.full(medium_random), 5, readings
        )
        assert not outcome.used_mop_up
        assert outcome.proven_in_phase1 == medium_random.n
        assert outcome.answer_nodes() == top_k_set(readings, 5)

    def test_run_plans_and_answers(self):
        topo = random_topology(15, rng=np.random.default_rng(0), radio_range=45.0)
        rng = np.random.default_rng(1)
        samples = rng.normal(10, 3, size=(6, 15))
        planner = ProofPlanner()
        probe = PlanningContext(
            topo, UNIFORM, SampleMatrix(samples, 3), 3, budget=float("inf")
        )
        context = PlanningContext(
            topo, UNIFORM, SampleMatrix(samples, 3), 3,
            budget=planner.minimum_cost(probe) * 1.3,
        )
        readings = rng.normal(10, 3, size=15)
        outcome = ExactTopK(planner).run(context, readings)
        assert outcome.answer_nodes() == top_k_set(readings, 3)
        assert outcome.plan is not None

    def test_misleading_samples_still_exact(self):
        """Samples point at entirely the wrong nodes; correctness must
        not depend on them (paper: knowledge 'does not need to be
        accurate in any way to guarantee correctness')."""
        topo = line_topology(8)
        # samples say the top values live near the root ...
        samples = np.tile(np.arange(8, 0, -1, dtype=float), (5, 1))
        planner = ProofPlanner()
        probe = PlanningContext(
            topo, UNIFORM, SampleMatrix(samples, 3), 3, budget=float("inf")
        )
        context = PlanningContext(
            topo, UNIFORM, SampleMatrix(samples, 3), 3,
            budget=planner.minimum_cost(probe) * 1.2,
        )
        # ... but reality puts them at the leaf end
        readings = np.arange(8, dtype=float)
        outcome = ExactTopK(planner).run(context, readings)
        assert outcome.answer_nodes() == top_k_set(readings, 3)

    def test_rejects_bad_k(self, small_tree):
        plan = QueryPlan.full(small_tree)
        with pytest.raises(PlanError):
            ExactTopK().run_with_plan(plan, 0, range(7))

    def test_k_exceeding_network_size(self, small_tree):
        plan = QueryPlan(
            small_tree, {e: 1 for e in small_tree.edges}, requires_all_edges=True
        )
        outcome = ExactTopK().run_with_plan(plan, 20, range(7))
        assert outcome.answer_nodes() == set(small_tree.nodes)

    def test_phase2_messages_are_accounted(self, medium_random, rng):
        readings = rng.normal(25, 8, size=medium_random.n)
        plan = QueryPlan(
            medium_random,
            {e: 1 for e in medium_random.edges},
            requires_all_edges=True,
        )
        outcome = ExactTopK().run_with_plan(plan, 5, readings)
        assert outcome.phase1_messages
        assert outcome.phase2_messages
        phase2 = sum(m.cost(UNIFORM) for m in outcome.phase2_messages)
        assert phase2 > 0


class TestMopUpDirect:
    def test_noop_when_root_proves_enough(self, small_tree):
        result = execute_proof_plan(QueryPlan.full(small_tree), range(7))
        answer, messages = mop_up(small_tree, result.states, 3)
        assert messages == []
        assert {n for __, n in answer} == {4, 5, 6}


@settings(max_examples=120, deadline=None)
@given(proof_plan_readings(max_nodes=14), st.integers(min_value=1, max_value=6))
def test_exact_for_arbitrary_phase1_plans(data, k):
    """Exactness survives any legal phase-1 bandwidth assignment,
    including ties in the readings."""
    topology, bandwidths, readings = data
    plan = QueryPlan(topology, bandwidths, requires_all_edges=True)
    outcome = ExactTopK().run_with_plan(plan, k, readings)
    expected = sorted(
        ((float(v), node) for node, v in enumerate(readings)), reverse=True
    )[: min(k, topology.n)]
    assert outcome.answer == expected


@settings(max_examples=80, deadline=None)
@given(proof_plan_readings(max_nodes=12), st.integers(min_value=1, max_value=5))
def test_skip_known_subtrees_preserves_exactness(data, k):
    """The mop-up refinement (skip fully-delivered subtrees) changes
    cost, never the answer."""
    topology, bandwidths, readings = data
    plan = QueryPlan(topology, bandwidths, requires_all_edges=True)
    fast = ExactTopK(skip_known_subtrees=True).run_with_plan(plan, k, readings)
    slow = ExactTopK(skip_known_subtrees=False).run_with_plan(plan, k, readings)
    assert fast.answer == slow.answer
    fast_cost = sum(m.cost(UNIFORM) for m in fast.phase2_messages)
    slow_cost = sum(m.cost(UNIFORM) for m in slow.phase2_messages)
    assert fast_cost <= slow_cost + 1e-9


def test_skip_known_subtrees_saves_messages(small_tree):
    """With generous phase-1 bandwidth on one branch, mop-up must not
    re-query it."""
    readings = [0, 1, 2, 3, 4, 5, 6]
    bandwidths = {e: 1 for e in small_tree.edges}
    bandwidths[1] = 3  # node 1's whole subtree is delivered in phase 1
    bandwidths[3] = 1
    bandwidths[4] = 1
    plan = QueryPlan(small_tree, bandwidths, requires_all_edges=True)
    fast = ExactTopK(skip_known_subtrees=True).run_with_plan(plan, 4, readings)
    slow = ExactTopK(skip_known_subtrees=False).run_with_plan(plan, 4, readings)
    assert fast.answer == slow.answer
    assert len(fast.phase2_messages) < len(slow.phase2_messages)
