"""Tests for the weighted-majority planner ensemble (citation [9])."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.network.builder import star_topology, zoned_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.planners.ensemble import WeightedMajorityPlanner
from repro.planners.greedy import GreedyPlanner
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.plans.plan import QueryPlan
from repro.sampling.matrix import SampleMatrix

UNIFORM = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.3)


class _FixedPlanner:
    """Test double returning a pre-built plan."""

    def __init__(self, name, plan):
        self.name = name
        self._plan = plan

    def plan(self, context):
        return self._plan


def make_context(topology, samples_array, k, budget):
    return PlanningContext(
        topology=topology,
        energy=UNIFORM,
        samples=SampleMatrix(samples_array, k),
        k=k,
        budget=budget,
    )


class TestConstruction:
    def test_validation(self):
        with pytest.raises(PlanError):
            WeightedMajorityPlanner([])
        with pytest.raises(PlanError):
            WeightedMajorityPlanner([GreedyPlanner()], beta=1.0)

    def test_initial_weights_equal(self):
        ensemble = WeightedMajorityPlanner([GreedyPlanner(), LPNoLFPlanner()])
        weights = ensemble.weights
        assert weights["greedy"] == weights["lp-no-lf"]

    def test_observe_before_plan_rejected(self):
        ensemble = WeightedMajorityPlanner([GreedyPlanner()])
        with pytest.raises(PlanError, match="before plan"):
            ensemble.observe([1.0, 2.0], 1)


class TestUpdates:
    def _fixed_ensemble(self, topology):
        good = QueryPlan.from_chosen_nodes(topology, {1, 2})
        bad = QueryPlan(topology, {})
        return WeightedMajorityPlanner(
            [_FixedPlanner("good", good), _FixedPlanner("bad", bad)],
            beta=0.5,
        )

    def test_laggards_lose_weight(self):
        topology = star_topology(4)
        ensemble = self._fixed_ensemble(topology)
        samples = np.tile([0, 9, 8, 1.0], (3, 1))
        context = make_context(topology, samples, 2, budget=100.0)
        ensemble.plan(context)
        ensemble.observe([0, 9, 8, 1.0], k=2)
        weights = ensemble.weights
        assert weights["good"] > weights["bad"]
        # shortfall of 2 hits at beta 0.5 -> quarter of the good weight
        assert weights["bad"] / weights["good"] == pytest.approx(0.25)

    def test_weights_stay_normalized(self):
        topology = star_topology(4)
        ensemble = self._fixed_ensemble(topology)
        samples = np.tile([0, 9, 8, 1.0], (3, 1))
        context = make_context(topology, samples, 2, budget=100.0)
        for __ in range(5):
            ensemble.plan(context)
            ensemble.observe([0, 9, 8, 1.0], k=2)
        assert sum(ensemble.weights.values()) == pytest.approx(1.0)

    def test_equal_performance_keeps_weights(self):
        topology = star_topology(3)
        plan = QueryPlan.from_chosen_nodes(topology, {1, 2})
        ensemble = WeightedMajorityPlanner(
            [_FixedPlanner("a", plan), _FixedPlanner("b", plan)]
        )
        context = make_context(
            topology, np.tile([0, 5, 4.0], (2, 1)), 2, budget=100.0
        )
        ensemble.plan(context)
        ensemble.observe([0, 5, 4.0], k=2)
        weights = ensemble.weights
        assert weights["a"] == pytest.approx(weights["b"])

    def test_standings_sorted_by_weight(self):
        topology = star_topology(4)
        ensemble = self._fixed_ensemble(topology)
        samples = np.tile([0, 9, 8, 1.0], (3, 1))
        context = make_context(topology, samples, 2, budget=100.0)
        ensemble.plan(context)
        ensemble.observe([0, 9, 8, 1.0], k=2)
        standings = ensemble.standings()
        assert standings[0]["expert"] == "good"
        assert standings[0]["mean_hits"] >= standings[1]["mean_hits"]


class TestConvergence:
    def test_converges_to_lf_on_contention_zones(self):
        """On the Figure 5 workload the ensemble must learn to follow
        LP+LF."""
        rng = np.random.default_rng(0)
        from repro.datagen.zones import ZoneWorkload

        workload = ZoneWorkload(num_zones=3, k=5)
        topology = workload.topology
        train = workload.trace(20, rng)
        energy = EnergyModel.mica2()
        budget = energy.message_cost(1) * (workload.relay_hops + 10) * 2.5

        ensemble = WeightedMajorityPlanner(
            [GreedyPlanner(), LPNoLFPlanner(), LPLFPlanner()], beta=0.7
        )
        context = PlanningContext(
            topology, energy, train.sample_matrix(5), 5, budget
        )
        ensemble.plan(context)
        for __ in range(25):
            ensemble.observe(workload.sample(rng), k=5)
        assert ensemble.leader().planner.name == "lp-lf"

    def test_plan_returns_leaders_plan(self):
        topology = star_topology(5)
        samples = np.tile([0, 9, 8, 1, 1.0], (4, 1))
        context = make_context(topology, samples, 2, budget=100.0)
        ensemble = WeightedMajorityPlanner([GreedyPlanner(), LPNoLFPlanner()])
        plan = ensemble.plan(context)
        assert plan is ensemble.leader().last_plan
