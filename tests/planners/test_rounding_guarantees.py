"""Property tests for the paper's §4.1 rounding guarantees.

"It can be easily shown that the resulting integer solution increases
the objective function value by at most a factor of 2, and costs at
most 2E."  Both halves, verified over random instances for the raw
(non-repaired) ½-threshold rounding of LP−LF.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.planners.rounding import ROUND_THRESHOLD
from repro.plans.plan import QueryPlan
from repro.sampling.matrix import SampleMatrix
from tests.conftest import tree_strategy

UNIFORM = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.3)


@st.composite
def lp_no_lf_instance(draw):
    topology = draw(tree_strategy(min_nodes=3, max_nodes=10))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    samples = SampleMatrix(rng.normal(10, 4, size=(6, topology.n)), 3)
    budget = draw(st.floats(min_value=0.5, max_value=12.0))
    return PlanningContext(
        topology=topology,
        energy=UNIFORM,
        samples=samples,
        k=3,
        budget=budget,
    )


@settings(max_examples=60, deadline=None)
@given(lp_no_lf_instance())
def test_half_threshold_rounding_guarantees(context):
    planner = LPNoLFPlanner(strict_budget=False, fill_budget=False)
    model, x, __ = planner.build_model(context)
    solution = model.solve()
    counts = context.samples.column_counts()
    total = int(counts.sum())

    plan = planner.plan(context)
    chosen = {
        node
        for node in context.topology.nodes
        if solution.value(x[node]) >= ROUND_THRESHOLD
    } | {context.topology.root}

    # (a) cost at most 2E: every needed edge had y >= x >= 1/2, so the
    # integral cost is at most twice the fractional cost <= 2E
    assert context.plan_cost(plan) <= 2 * context.budget + 1e-6

    # (b) objective (expected misses) at most doubled: per node, a
    # dropped x_i < 1/2 contributes cnt_i <= 2 (1 - x_i) cnt_i
    fractional_misses = total - solution.objective
    rounded_misses = total - sum(int(counts[n]) for n in chosen)
    assert rounded_misses <= 2 * fractional_misses + 1e-6


@settings(max_examples=40, deadline=None)
@given(lp_no_lf_instance())
def test_strict_mode_never_exceeds_budget(context):
    plan = LPNoLFPlanner(strict_budget=True).plan(context)
    assert context.plan_cost(plan) <= context.budget + 1e-9
    assert isinstance(plan, QueryPlan)
