"""Cross-cutting edge cases that don't belong to a single module file."""

import numpy as np
import pytest

from repro.datagen.gaussian import GaussianField
from repro.network.builder import line_topology, star_topology
from repro.network.energy import EnergyModel
from repro.network.ghs import build_mst
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.query.engine import EngineConfig, TopKEngine
from repro.stochastic.scenarios import ScenarioSet
from repro.stochastic.steiner import TwoStageSteinerTree

UNIFORM = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.2)


class TestReportingOutput:
    def test_print_table(self, capsys):
        from repro.experiments.reporting import print_table

        print_table([{"a": 1}], title="t")
        out = capsys.readouterr().out
        assert "t" in out and "a" in out

    def test_print_chart(self, capsys):
        from repro.experiments.reporting import print_chart

        print_chart([{"x": 1.0, "y": 2.0}, {"x": 3.0, "y": 4.0}],
                    x="x", y="y")
        assert "o" in capsys.readouterr().out


class TestSteinerCustomCosts:
    def test_expensive_edges_deferred(self):
        topo = star_topology(3)
        problem = TwoStageSteinerTree(
            topo, edge_costs={1: 10.0, 2: 1.0}, inflation=2.0
        )
        scenarios = ScenarioSet([{1, 2}] * 2 + [frozenset()] * 2)
        solution = problem.solve_total_cost(scenarios)
        # both demanded half the time: cheap edge bought up front
        # (1.0 < 2.0 * 1.0 * 0.5 is false... p=0.5, buy iff c < sigma*c*p
        # never holds at sigma*p = 1; ties leave the LP free — so only
        # assert costs are consistent, not a specific choice)
        total = solution.total_expected_cost
        recompute = solution.first_stage_cost + solution.expected_second_stage_cost
        assert total == pytest.approx(recompute)

    def test_always_demanded_expensive_edge(self):
        topo = star_topology(2)
        problem = TwoStageSteinerTree(topo, edge_costs={1: 5.0}, inflation=3.0)
        scenarios = ScenarioSet([{1}] * 4)
        solution = problem.solve_total_cost(scenarios)
        assert 1 in solution.first_stage_edges
        assert solution.first_stage_cost == pytest.approx(5.0)


class TestGHSOnStructuredLayouts:
    def test_lab_layout(self):
        from repro.datagen.intel import RADIO_RANGE, _mote_positions

        rng = np.random.default_rng(2006)
        positions = _mote_positions(rng)
        outcome = build_mst(positions, radio_range=RADIO_RANGE)
        assert outcome.topology.n == len(positions)
        assert outcome.messages > 0

    def test_collinear_points(self):
        positions = [(float(i), 0.0) for i in range(6)]
        outcome = build_mst(positions, radio_range=1.5)
        assert outcome.mst_weight == pytest.approx(5.0)
        assert outcome.topology.height == 5


class TestEngineReplanPath:
    def test_replan_installs_on_big_improvement(self):
        """Drifted samples make the re-optimized plan clearly better, so
        the §4.4 dissemination rule fires."""
        rng = np.random.default_rng(2)
        topology = star_topology(8)
        engine = TopKEngine(
            topology,
            UNIFORM,
            k=2,
            planner=LPNoLFPlanner(),
            config=EngineConfig(
                budget_mj=3.0, replan_every=1, replan_improvement=0.05,
                window_capacity=4,
            ),
            rng=np.random.default_rng(3),
        )
        hot_a = GaussianField(
            np.array([0, 50, 40, 1, 1, 1, 1, 1.0]), np.full(8, 0.5)
        )
        hot_b = GaussianField(
            np.array([0, 1, 1, 1, 1, 1, 50, 40.0]), np.full(8, 0.5)
        )
        for __ in range(4):
            engine.feed_sample(hot_a.sample(rng))
        engine.ensure_plan()
        old_plan = engine.plan
        # the world moves: refresh the window without dropping the plan
        for __ in range(4):
            engine.window.add(hot_b.sample(rng))
        assert engine.maybe_replan() is True
        assert engine.plan != old_plan
        assert engine.query(hot_b.sample(rng)).accuracy == 1.0


class TestZeroVarianceWorkload:
    def test_constant_readings_still_plan(self):
        """Degenerate field: every sample identical; ties everywhere."""
        topology = line_topology(5)
        field = GaussianField(np.arange(5, dtype=float), np.zeros(5))
        rng = np.random.default_rng(0)
        from repro.planners.base import PlanningContext
        from repro.sampling.matrix import SampleMatrix

        samples = SampleMatrix(field.trace(5, rng).values, 2)
        context = PlanningContext(topology, UNIFORM, samples, 2, 10.0)
        plan = LPNoLFPlanner().plan(context)
        from repro.plans.execution import execute_plan

        result = execute_plan(plan, field.sample(rng))
        assert result.top_k_nodes(2) == {3, 4}
