"""Unit tests for the adaptive sampling scheduler."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling.collector import AdaptiveSampler


class TestAdaptiveSampler:
    def test_parameter_validation(self):
        with pytest.raises(SamplingError):
            AdaptiveSampler(base_rate=0.0)
        with pytest.raises(SamplingError):
            AdaptiveSampler(base_rate=0.5, max_rate=0.1)
        with pytest.raises(SamplingError):
            AdaptiveSampler(boost=0.5)
        with pytest.raises(SamplingError):
            AdaptiveSampler(decay=0.0)

    def test_explore_rate_statistics(self):
        sampler = AdaptiveSampler(base_rate=0.2, rng=np.random.default_rng(0))
        decisions = [sampler.decide() for __ in range(5000)]
        rate = np.mean([d.explore for d in decisions])
        assert 0.17 < rate < 0.23
        assert all(d.rate == 0.2 for d in decisions)
        assert decisions[0].exploit != decisions[0].explore

    def test_bad_accuracy_boosts_rate(self):
        sampler = AdaptiveSampler(base_rate=0.05, target_accuracy=0.9)
        for __ in range(10):
            sampler.record_accuracy(0.2)
        assert sampler.rate == sampler.max_rate

    def test_good_accuracy_decays_back(self):
        sampler = AdaptiveSampler(base_rate=0.05, target_accuracy=0.9)
        sampler.record_accuracy(0.1)
        boosted = sampler.rate
        for __ in range(50):
            sampler.record_accuracy(1.0)
        assert sampler.rate < boosted
        assert sampler.rate == pytest.approx(sampler.base_rate)

    def test_accuracy_validation(self):
        with pytest.raises(SamplingError):
            AdaptiveSampler().record_accuracy(1.5)
