"""Unit and property tests for the sample matrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SamplingError
from repro.sampling.matrix import SampleMatrix


class TestConstruction:
    def test_shape_checks(self):
        with pytest.raises(SamplingError, match="2-D"):
            SampleMatrix(np.zeros(5), 1)
        with pytest.raises(SamplingError, match="at least one"):
            SampleMatrix(np.zeros((0, 5)), 1)
        with pytest.raises(SamplingError, match="k must"):
            SampleMatrix(np.zeros((2, 5)), 0)

    def test_k_clamped_to_node_count(self):
        matrix = SampleMatrix(np.zeros((2, 3)), 10)
        assert matrix.k == 3
        assert matrix.requested_k == 10
        assert len(matrix.ones(0)) == 3

    def test_from_rows(self):
        matrix = SampleMatrix.from_rows([[1, 2], [2, 1]], 1)
        assert matrix.num_samples == 2
        assert matrix.num_nodes == 2

    def test_repr(self):
        assert "m=2" in repr(SampleMatrix(np.zeros((2, 3)), 1))


class TestDerivedQuantities:
    def test_ones_and_matrix_agree(self):
        values = np.array([[5, 1, 9], [1, 8, 2.0]])
        matrix = SampleMatrix(values, 1)
        assert matrix.ones(0) == frozenset({2})
        assert matrix.ones(1) == frozenset({1})
        assert matrix.matrix[0].tolist() == [False, False, True]
        assert matrix.ones_list() == [frozenset({2}), frozenset({1})]

    def test_ties_broken_by_node_id(self):
        matrix = SampleMatrix(np.array([[7.0, 7.0, 7.0]]), 2)
        assert matrix.ones(0) == frozenset({1, 2})

    def test_column_counts(self):
        values = np.array([[5, 1, 9], [1, 8, 2], [9, 1, 5.0]])
        matrix = SampleMatrix(values, 1)
        assert matrix.column_counts().tolist() == [1, 1, 1]
        matrix2 = SampleMatrix(values, 2)
        assert matrix2.column_counts().tolist() == [2, 1, 3]

    def test_value_accessor(self):
        matrix = SampleMatrix(np.array([[5.0, 1.0]]), 1)
        assert matrix.value(0, 1) == 1.0

    def test_smaller_than(self):
        matrix = SampleMatrix(np.array([[5, 1, 9, 5.0]]), 1)
        # node 0 has value 5; ties resolve by id: node 3 (same value,
        # higher id) ranks above node 0
        assert matrix.smaller_than(0, 0) == frozenset({1})
        assert matrix.smaller_than(3, 0) == frozenset({0, 1})
        assert matrix.smaller_than(2, 0) == frozenset({0, 1, 3})

    def test_with_sample_appends_immutably(self):
        matrix = SampleMatrix(np.array([[1.0, 2.0]]), 1)
        grown = matrix.with_sample([3.0, 0.0])
        assert matrix.num_samples == 1
        assert grown.num_samples == 2
        assert grown.ones(1) == frozenset({0})

    def test_with_sample_rejects_wrong_width(self):
        matrix = SampleMatrix(np.array([[1.0, 2.0]]), 1)
        with pytest.raises(SamplingError, match="nodes"):
            matrix.with_sample([1.0])


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_matrix_invariants(m, n, k, seed):
    values = np.random.default_rng(seed).normal(size=(m, n))
    matrix = SampleMatrix(values, k)
    effective = min(k, n)
    assert matrix.matrix.sum() == m * effective
    for j in range(m):
        ones = matrix.ones(j)
        assert len(ones) == effective
        # every one-node's value >= every zero-node's value
        floor = min(values[j, node] for node in ones)
        for other in range(n):
            if other not in ones:
                assert values[j, other] <= floor
    assert matrix.column_counts().sum() == m * effective
