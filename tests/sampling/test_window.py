"""Unit tests for the sample window."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling.matrix import SampleMatrix
from repro.sampling.window import SampleWindow


class TestSampleWindow:
    def test_capacity_eviction(self):
        window = SampleWindow(capacity=2)
        window.add([1.0, 0.0])
        window.add([2.0, 0.0])
        window.add([3.0, 0.0])
        assert len(window) == 2
        matrix = window.matrix(1)
        assert matrix.values[:, 0].tolist() == [2.0, 3.0]

    def test_rejects_bad_capacity(self):
        with pytest.raises(SamplingError):
            SampleWindow(capacity=0)

    def test_rejects_shape_mismatch(self):
        window = SampleWindow()
        window.add([1.0, 2.0])
        with pytest.raises(SamplingError, match="nodes"):
            window.add([1.0])
        with pytest.raises(SamplingError, match="flat"):
            window.add(np.zeros((2, 2)))

    def test_matrix_requires_samples(self):
        with pytest.raises(SamplingError, match="empty"):
            SampleWindow().matrix(1)

    def test_extend_and_clear(self):
        window = SampleWindow(capacity=10)
        window.extend(np.arange(6, dtype=float).reshape(3, 2))
        assert len(window) == 3
        assert window.num_nodes == 2
        assert not window.is_empty
        window.clear()
        assert window.is_empty
        assert window.num_nodes is None

    def test_matrix_reflects_current_window(self):
        window = SampleWindow(capacity=3)
        window.add([9.0, 1.0])
        assert window.matrix(1).ones(0) == frozenset({0})
        window.add([1.0, 9.0])
        matrix = window.matrix(1)
        assert matrix.num_samples == 2
        assert matrix.ones(1) == frozenset({1})


class TestDigestCache:
    def test_unchanged_window_returns_same_object(self):
        window = SampleWindow(capacity=5)
        window.add([1.0, 2.0, 3.0])
        first = window.matrix(2)
        assert window.matrix(2) is first

    def test_append_promotes_digest_incrementally(self):
        window = SampleWindow(capacity=10)
        rng = np.random.default_rng(0)
        window.add(rng.normal(size=4))
        stale = window.matrix(2)
        window.add(rng.normal(size=4))
        window.add(rng.normal(size=4))
        promoted = window.matrix(2)
        fresh = SampleMatrix(np.vstack(window.rows()), 2)
        assert promoted.num_samples == 3
        assert promoted.ones_list() == fresh.ones_list()
        assert np.array_equal(promoted.values, fresh.values)
        assert stale.num_samples == 1  # the cached digest was not mutated

    def test_eviction_invalidates_digest(self):
        window = SampleWindow(capacity=2)
        window.add([9.0, 1.0])
        window.add([1.0, 9.0])
        window.matrix(1)
        window.add([5.0, 6.0])  # evicts the first row
        fresh = SampleMatrix(np.vstack(window.rows()), 1)
        rebuilt = window.matrix(1)
        assert rebuilt.ones_list() == fresh.ones_list()
        assert np.array_equal(rebuilt.values, fresh.values)

    def test_clear_invalidates_digest(self):
        window = SampleWindow(capacity=3)
        window.add([1.0, 2.0])
        window.matrix(1)
        window.clear()
        window.add([4.0, 3.0])
        assert window.matrix(1).ones(0) == frozenset({0})
