"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.network.builder import balanced_tree, line_topology, random_topology
from repro.network.energy import EnergyModel
from repro.network.topology import Topology

# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def energy() -> EnergyModel:
    return EnergyModel.mica2()


@pytest.fixture
def small_tree() -> Topology:
    """A hand-checkable 7-node tree.

    ::

            0
           / \\
          1   2
         / \\   \\
        3   4   5
                 \\
                  6
    """
    return Topology([-1, 0, 0, 1, 1, 2, 5])


@pytest.fixture
def chain() -> Topology:
    return line_topology(5)


@pytest.fixture
def bushy() -> Topology:
    return balanced_tree(branching=3, depth=2)


@pytest.fixture
def medium_random(rng) -> Topology:
    return random_topology(30, rng=rng)


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------


@st.composite
def tree_strategy(draw, min_nodes: int = 2, max_nodes: int = 16) -> Topology:
    """Random rooted trees: each node's parent precedes it."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    parents = [-1]
    for node in range(1, n):
        parents.append(draw(st.integers(min_value=0, max_value=node - 1)))
    return Topology(parents)


@st.composite
def tree_with_readings(draw, min_nodes: int = 2, max_nodes: int = 14):
    """A random tree plus one reading per node (ties allowed)."""
    topology = draw(tree_strategy(min_nodes=min_nodes, max_nodes=max_nodes))
    readings = draw(
        st.lists(
            st.integers(min_value=-50, max_value=50),
            min_size=topology.n,
            max_size=topology.n,
        )
    )
    return topology, [float(v) for v in readings]


@st.composite
def tree_plan_readings(draw, min_nodes: int = 2, max_nodes: int = 12):
    """Tree + arbitrary bandwidth plan + readings."""
    topology, readings = draw(
        tree_with_readings(min_nodes=min_nodes, max_nodes=max_nodes)
    )
    bandwidths = {
        edge: draw(st.integers(min_value=0, max_value=topology.n))
        for edge in topology.edges
    }
    return topology, bandwidths, readings


@st.composite
def proof_plan_readings(draw, min_nodes: int = 2, max_nodes: int = 12):
    """Tree + all-edges-used plan (b >= 1) + readings."""
    topology, readings = draw(
        tree_with_readings(min_nodes=min_nodes, max_nodes=max_nodes)
    )
    bandwidths = {
        edge: draw(st.integers(min_value=1, max_value=topology.n))
        for edge in topology.edges
    }
    return topology, bandwidths, readings
