"""Smoke + shape tests for the experiment harness.

Each experiment runs at a reduced scale and the paper's qualitative
claims are asserted on the output rows.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig3_comparison,
    fig4_variance,
    fig5_zones,
    fig7_num_zones,
    fig8_exact,
    fig9_intel,
    lp_timing,
    sample_size,
)
from repro.experiments.common import budget_sweep
from repro.experiments.reporting import format_table


def by_algorithm(rows, name):
    return [r for r in rows if r.get("algorithm") == name]


class TestFig3:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig3_comparison.run(
            n=40, k=5, num_samples=12, eval_epochs=6, budget_steps=4,
            include_naive_one=True,
        )

    def test_all_algorithms_present(self, rows):
        names = {r["algorithm"] for r in rows}
        assert names == {
            "greedy", "lp-no-lf", "lp-lf", "oracle", "naive-k", "naive-1",
        }

    def test_naive_k_much_more_expensive_than_approximates(self, rows):
        naive_full = max(
            r["energy_mj"] for r in by_algorithm(rows, "naive-k")
        )
        lp_best = max(
            r["energy_mj"] for r in by_algorithm(rows, "lp-lf")
        )
        assert naive_full > lp_best

    def test_oracle_is_cheapest_at_full_accuracy(self, rows):
        oracle_full = [
            r for r in by_algorithm(rows, "oracle") if r["accuracy"] == 1.0
        ][0]
        naive_full = [
            r for r in by_algorithm(rows, "naive-k") if r["accuracy"] == 1.0
        ][0]
        assert oracle_full["energy_mj"] < naive_full["energy_mj"]

    def test_naive_one_worst_messages(self, rows):
        one = min(r["energy_mj"] for r in by_algorithm(rows, "naive-1"))
        k_cost = min(r["energy_mj"] for r in by_algorithm(rows, "naive-k"))
        assert one > k_cost * 0.9  # already expensive at j=1

    def test_accuracy_improves_with_budget(self, rows):
        for name in ("lp-no-lf", "lp-lf"):
            series = by_algorithm(rows, name)
            assert series[-1]["accuracy"] >= series[0]["accuracy"]


class TestFig4:
    def test_degradation_with_variance(self):
        rows = fig4_variance.run(
            n=30, k=5, num_samples=10, eval_epochs=8,
            variances=(0.05, 4.0, 14.0),
        )
        lf = by_algorithm(rows, "lp-lf")
        assert lf[0]["accuracy"] >= 0.8       # predictable: near perfect
        assert lf[-1]["accuracy"] < lf[0]["accuracy"]  # diluted: degraded


class TestFig5:
    def test_lf_wins_at_high_budget(self):
        rows = fig5_zones.run(
            num_zones=4, k=6, num_samples=15, eval_epochs=8, budget_steps=4
        )
        budgets = sorted({r["budget_mj"] for r in rows})
        top = budgets[-1]
        lf = [r for r in rows if r["algorithm"] == "lp-lf"
              and r["budget_mj"] == top][0]
        no_lf = [r for r in rows if r["algorithm"] == "lp-no-lf"
                 and r["budget_mj"] == top][0]
        assert lf["accuracy"] >= no_lf["accuracy"]


class TestFig7:
    def test_more_zones_lower_accuracy(self):
        rows = fig7_num_zones.run(
            zone_counts=(1, 4), k=5, num_samples=12, eval_epochs=8
        )
        lf = by_algorithm(rows, "lp-lf")
        assert lf[0]["accuracy"] > lf[-1]["accuracy"]


class TestFig8:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig8_exact.run(
            n=30, k=5, num_samples=8, eval_epochs=5,
            budget_factors=(1.0, 1.3, 1.8),
        )

    def test_phase2_shrinks_with_phase1_budget(self, rows):
        phase2 = [r["phase2_cost_mj"] for r in rows]
        assert phase2[0] >= phase2[-1]

    def test_baselines_are_constant_lines(self, rows):
        assert len({r["naive_k_mj"] for r in rows}) == 1
        assert len({r["oracle_proof_mj"] for r in rows}) == 1

    def test_oracle_proof_below_naive(self, rows):
        assert rows[0]["oracle_proof_mj"] < rows[0]["naive_k_mj"]

    def test_some_trial_beats_naive(self, rows):
        assert min(r["total_cost_mj"] for r in rows) < rows[0]["naive_k_mj"]


class TestFig9:
    def test_shapes(self):
        rows = fig9_intel.run(
            training_epochs=30, eval_epochs=8, budget_steps=3
        )
        names = {r["algorithm"] for r in rows}
        assert "naive-k" in names and "greedy" in names
        naive = by_algorithm(rows, "naive-k")[0]
        lp = by_algorithm(rows, "lp-no-lf")
        # the paper's prose point: naive-k needs much more energy than
        # the approximate planners' budgets
        assert naive["energy_mj"] > max(r["energy_mj"] for r in lp)


class TestSampleSize:
    def test_more_samples_not_worse(self):
        rows = sample_size.run(
            n=30, k=5, sizes=(1, 25), eval_epochs=10
        )
        assert rows[-1]["accuracy"] >= rows[0]["accuracy"]

    def test_intel_workload_variant(self):
        rows = sample_size.run(sizes=(2, 10), eval_epochs=5, workload="intel")
        assert all(r["workload"] == "intel" for r in rows)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            sample_size.run(workload="nope")


class TestLPTiming:
    def test_rows_and_growth(self):
        rows = lp_timing.run(
            node_counts=(10, 20), sample_counts=(5,), include_proof=False
        )
        assert len(rows) == 4
        lf_rows = [r for r in rows if r["formulation"] == "lp-lf"]
        assert lf_rows[1]["variables"] > lf_rows[0]["variables"]
        assert all(r["solve_s"] >= 0 for r in rows)


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 0.12345}, {"a": 22, "b": 3.0}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "0.123" in text
        assert len({len(line) for line in lines[2:]}) == 1

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_budget_sweep(self):
        ladder = budget_sweep(2.0, 3, factor=2.0)
        assert ladder == [2.0, 4.0, 8.0]


class TestAsciiChart:
    def _rows(self):
        return [
            {"b": 1.0, "acc": 0.1, "alg": "x1"},
            {"b": 2.0, "acc": 0.5, "alg": "x1"},
            {"b": 1.0, "acc": 0.3, "alg": "x2"},
            {"b": 2.0, "acc": 0.9, "alg": "x2"},
        ]

    def test_chart_contains_axes_and_legend(self):
        from repro.experiments.reporting import ascii_chart

        text = ascii_chart(self._rows(), x="b", y="acc", series="alg",
                           title="demo")
        assert text.startswith("demo")
        assert "o=x1" in text and "x=x2" in text
        assert "(b)" in text
        assert "0.9" in text and "0.1" in text

    def test_chart_without_series(self):
        from repro.experiments.reporting import ascii_chart

        text = ascii_chart(self._rows(), x="b", y="acc")
        assert "o" in text
        assert "=" not in text.splitlines()[-1]  # no legend line

    def test_chart_skips_non_numeric(self):
        from repro.experiments.reporting import ascii_chart

        rows = self._rows() + [{"b": "", "acc": 0.5}]
        text = ascii_chart(rows, x="b", y="acc")
        assert "(no plottable points)" not in text

    def test_chart_empty(self):
        from repro.experiments.reporting import ascii_chart

        assert "(no plottable points)" in ascii_chart([], x="b", y="acc")

    def test_chart_single_point(self):
        from repro.experiments.reporting import ascii_chart

        text = ascii_chart([{"b": 1.0, "acc": 0.5}], x="b", y="acc")
        assert "o" in text
