"""The experiment runner: deterministic seeding, caching, parallelism."""

import numpy as np
import pytest

from repro.experiments.runner import (
    ExperimentRunner,
    content_key,
    run_trials,
)
from repro.network.builder import random_topology
from repro.obs import Instrumentation


def _draw_trial(params: dict, rng: np.random.Generator) -> dict:
    """Module-level so the process pool can pickle it."""
    return {"x": params["x"] * 2, "draw": float(rng.random())}


PARAMS = [{"x": i} for i in range(5)]


class TestDeterminism:
    def test_same_seed_same_results(self):
        first = ExperimentRunner(seed=9).map(_draw_trial, PARAMS)
        second = ExperimentRunner(seed=9).map(_draw_trial, PARAMS)
        assert first == second
        assert [row["x"] for row in first] == [0, 2, 4, 6, 8]

    def test_trials_get_independent_streams(self):
        results = ExperimentRunner(seed=9).map(_draw_trial, PARAMS)
        draws = [row["draw"] for row in results]
        assert len(set(draws)) == len(draws)

    def test_different_seed_different_draws(self):
        first = ExperimentRunner(seed=1).map(_draw_trial, PARAMS)
        second = ExperimentRunner(seed=2).map(_draw_trial, PARAMS)
        assert [r["draw"] for r in first] != [r["draw"] for r in second]

    def test_empty_bag(self):
        assert ExperimentRunner().map(_draw_trial, []) == []


class TestCaching:
    def test_second_run_is_served_from_cache(self):
        obs = Instrumentation()
        runner = ExperimentRunner(seed=4, instrumentation=obs)
        first = runner.map(_draw_trial, PARAMS)
        assert runner.cache_size == len(PARAMS)
        second = runner.map(_draw_trial, PARAMS)
        assert second == first
        assert obs.metrics.counter("runner.cache.hits").value == len(PARAMS)
        assert obs.metrics.counter("runner.cache.misses").value == len(PARAMS)
        assert obs.metrics.counter("runner.trials").value == 2 * len(PARAMS)

    def test_changed_params_miss(self):
        runner = ExperimentRunner(seed=4)
        runner.map(_draw_trial, PARAMS)
        runner.map(_draw_trial, [{"x": 99}])
        assert runner.cache_size == len(PARAMS) + 1

    def test_changed_seed_misses(self):
        runner = ExperimentRunner(seed=4)
        runner.map(_draw_trial, PARAMS, seed=4)
        runner.map(_draw_trial, PARAMS, seed=5)
        assert runner.cache_size == 2 * len(PARAMS)

    def test_clear_cache(self):
        runner = ExperimentRunner(seed=4)
        runner.map(_draw_trial, PARAMS)
        runner.clear_cache()
        assert runner.cache_size == 0


class TestContentKeys:
    def test_key_covers_function_params_and_seed(self):
        seed_a, seed_b = np.random.SeedSequence(0).spawn(2)
        base = content_key(_draw_trial, {"x": 1}, seed_a)
        assert content_key(_draw_trial, {"x": 1}, seed_a) == base
        assert content_key(_draw_trial, {"x": 2}, seed_a) != base
        assert content_key(_draw_trial, {"x": 1}, seed_b) != base

    def test_topology_identity_is_structural(self):
        """Two equal-structure topologies key identically even when one
        has populated its lazy derived caches (cache_token, not pickle,
        decides)."""
        (seed,) = np.random.SeedSequence(0).spawn(1)
        first = random_topology(20, rng=np.random.default_rng(1))
        second = random_topology(20, rng=np.random.default_rng(1))
        assert first.same_structure(second)
        second.descendant_matrix()  # populate a lazy cache
        second.path_edge_arrays()
        assert content_key(
            _draw_trial, {"topology": first}, seed
        ) == content_key(_draw_trial, {"topology": second}, seed)

    def test_ndarray_content_keys(self):
        (seed,) = np.random.SeedSequence(0).spawn(1)
        a = np.arange(6, dtype=np.float64)
        base = content_key(_draw_trial, {"trace": a}, seed)
        assert content_key(_draw_trial, {"trace": a.copy()}, seed) == base
        bumped = a.copy()
        bumped[3] += 1e-9
        assert content_key(_draw_trial, {"trace": bumped}, seed) != base


class TestParallel:
    def test_pool_matches_inline(self):
        inline = ExperimentRunner(processes=1, seed=7).map(_draw_trial, PARAMS)
        pooled = ExperimentRunner(processes=2, seed=7).map(_draw_trial, PARAMS)
        assert pooled == inline

    def test_run_trials_convenience(self):
        rows = run_trials(_draw_trial, PARAMS, seed=7, processes=2)
        assert rows == ExperimentRunner(seed=7).map(_draw_trial, PARAMS)
