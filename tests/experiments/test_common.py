"""Unit tests for the experiment-harness plumbing."""

import numpy as np
import pytest

from repro.datagen.gaussian import GaussianField
from repro.datagen.trace import Trace
from repro.errors import PlanError
from repro.experiments.common import Evaluation, evaluate_plan, evaluate_planner
from repro.network.builder import star_topology
from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.planners.greedy import GreedyPlanner
from repro.plans.plan import QueryPlan

UNIFORM = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.2)


@pytest.fixture
def setting():
    topology = star_topology(6)
    means = np.array([0.0, 50, 40, 1, 1, 1])
    field = GaussianField(means, np.full(6, 0.5))
    rng = np.random.default_rng(3)
    return topology, field.trace(8, rng), field.trace(5, rng)


class TestEvaluatePlan:
    def test_perfect_plan(self, setting):
        topology, __, eval_trace = setting
        evaluation = evaluate_plan(
            "full", QueryPlan.full(topology), topology, UNIFORM,
            eval_trace, k=2,
        )
        assert evaluation.mean_accuracy == 1.0
        assert evaluation.mean_energy_mj > 0
        assert evaluation.algorithm == "full"
        assert evaluation.static_cost_mj == pytest.approx(
            QueryPlan.full(topology).static_cost(UNIFORM)
        )

    def test_partial_plan(self, setting):
        topology, __, eval_trace = setting
        plan = QueryPlan.from_chosen_nodes(topology, {1})  # misses node 2
        evaluation = evaluate_plan(
            "half", plan, topology, UNIFORM, eval_trace, k=2
        )
        assert evaluation.mean_accuracy == pytest.approx(0.5)

    def test_row_serialization(self, setting):
        topology, __, eval_trace = setting
        evaluation = evaluate_plan(
            "x", QueryPlan.full(topology), topology, UNIFORM, eval_trace, 2
        )
        row = evaluation.row(budget_mj=3.0)
        assert row["algorithm"] == "x"
        assert row["budget_mj"] == 3.0
        assert set(row) >= {"accuracy", "energy_mj"}


class TestEngines:
    def test_batch_matches_scalar(self, setting):
        topology, __, eval_trace = setting
        plan = QueryPlan.from_chosen_nodes(topology, {1, 2})
        batch = evaluate_plan(
            "p", plan, topology, UNIFORM, eval_trace, k=2, engine="batch"
        )
        scalar = evaluate_plan(
            "p", plan, topology, UNIFORM, eval_trace, k=2, engine="scalar"
        )
        assert batch.mean_accuracy == scalar.mean_accuracy
        assert batch.mean_energy_mj == pytest.approx(
            scalar.mean_energy_mj, rel=1e-9
        )

    def test_engines_agree_under_shared_seed_with_failures(self, setting):
        topology, __, eval_trace = setting
        plan = QueryPlan.full(topology)
        failures = LinkFailureModel.uniform(
            topology, probability=0.3, reroute_extra_mj=1.0
        )
        results = [
            evaluate_plan(
                "p", plan, topology, UNIFORM, eval_trace, k=2,
                failures=failures, seed=12, engine=engine,
            )
            for engine in ("batch", "scalar")
        ]
        assert results[0].mean_energy_mj == pytest.approx(
            results[1].mean_energy_mj, rel=1e-9
        )

    def test_seed_makes_failure_runs_reproducible(self, setting):
        topology, __, eval_trace = setting
        plan = QueryPlan.full(topology)
        failures = LinkFailureModel.uniform(
            topology, probability=0.5, reroute_extra_mj=3.0
        )
        energies = {
            evaluate_plan(
                "p", plan, topology, UNIFORM, eval_trace, k=2,
                failures=failures, seed=99,
            ).mean_energy_mj
            for __ in range(2)
        }
        assert len(energies) == 1

    def test_explicit_rng_is_honoured(self, setting):
        topology, __, eval_trace = setting
        plan = QueryPlan.full(topology)
        failures = LinkFailureModel.uniform(
            topology, probability=0.5, reroute_extra_mj=3.0
        )
        by_seed = evaluate_plan(
            "p", plan, topology, UNIFORM, eval_trace, k=2,
            failures=failures, seed=42,
        )
        by_rng = evaluate_plan(
            "p", plan, topology, UNIFORM, eval_trace, k=2,
            failures=failures, rng=np.random.default_rng(42),
        )
        assert by_rng.mean_energy_mj == by_seed.mean_energy_mj

    def test_rejects_rng_and_seed_together(self, setting):
        topology, __, eval_trace = setting
        with pytest.raises(PlanError, match="not both"):
            evaluate_plan(
                "p", QueryPlan.full(topology), topology, UNIFORM,
                eval_trace, k=2, rng=np.random.default_rng(0), seed=1,
            )

    def test_rejects_unknown_engine(self, setting):
        topology, __, eval_trace = setting
        with pytest.raises(PlanError, match="engine"):
            evaluate_plan(
                "p", QueryPlan.full(topology), topology, UNIFORM,
                eval_trace, k=2, engine="quantum",
            )


class TestEvaluatePlanner:
    def test_plans_from_training_trace(self, setting):
        topology, train, eval_trace = setting
        evaluation = evaluate_planner(
            GreedyPlanner(), topology, UNIFORM, train, eval_trace,
            k=2, budget=3.0,
        )
        assert isinstance(evaluation, Evaluation)
        assert evaluation.algorithm == "greedy"
        assert evaluation.mean_accuracy == 1.0  # the two hot nodes are cheap
        assert evaluation.plan is not None
        assert evaluation.static_cost_mj <= 3.0
