"""Every experiment module exposes the same CLI-facing surface."""

import pytest

from repro.experiments import (
    fig3_comparison,
    fig4_variance,
    fig5_zones,
    fig7_num_zones,
    fig8_exact,
    fig9_intel,
    lp_timing,
    sample_size,
)

MODULES = [
    fig3_comparison,
    fig4_variance,
    fig5_zones,
    fig7_num_zones,
    fig8_exact,
    fig9_intel,
    lp_timing,
    sample_size,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_surface(module):
    assert callable(module.run)
    assert callable(module.main)
    assert module.__doc__  # each documents its paper figure and shape


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_main_prints_table(module, monkeypatch, capsys):
    monkeypatch.setattr(
        module, "run", lambda *a, **k: [{"algorithm": "stub", "accuracy": 1.0}]
    )
    rows = module.main()
    out = capsys.readouterr().out
    assert rows == [{"algorithm": "stub", "accuracy": 1.0}]
    # a titled table was printed (some mains select columns, so the
    # stub value itself may not appear)
    assert out.strip()
    assert "---" in out
