"""Service core: lifecycle, admission, expiry, overload, shared caches."""

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    AdmissionError,
    OverloadError,
    ServiceError,
    SessionError,
)
from repro.obs import Instrumentation
from repro.plans.serialize import plan_from_dict
from repro.service import messages as msg
from repro.service.server import ServiceConfig, TopKService

PARENTS = (-1, 0, 0, 1, 1, 2, 5)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def service(clock):
    return TopKService(
        ServiceConfig(max_sessions=2, queue_limit=2, session_ttl_s=60.0),
        clock=clock,
    )


def _open(service, **overrides):
    topology_id = service.register_topology(PARENTS)
    defaults = dict(topology_id=topology_id, k=2, budget_mj=60.0)
    defaults.update(overrides)
    return service.handle(msg.OpenSession(**defaults))


def _readings(seed=0):
    return tuple(np.random.default_rng(seed).normal(25, 3, len(PARENTS)))


# -- registry ---------------------------------------------------------------


def test_register_topology_is_idempotent(service):
    first = service.handle(msg.RegisterTopology(parents=PARENTS))
    second = service.handle(msg.RegisterTopology(parents=PARENTS))
    assert first == second
    assert first.num_nodes == len(PARENTS)


def test_open_against_unknown_topology_fails(service):
    with pytest.raises(ServiceError, match="unknown topology"):
        service.handle(msg.OpenSession(topology_id="nope", k=2))


def test_unknown_planner_fails(service):
    with pytest.raises(ServiceError, match="unknown planner"):
        _open(service, planner="quantum")


# -- session lifecycle ------------------------------------------------------


def test_full_session_lifecycle(service):
    opened = _open(service)
    sid = opened.session_id
    accepted = service.handle(
        msg.FeedSample(session_id=sid, readings=_readings())
    )
    assert accepted.window_size == 1
    reply = service.handle(
        msg.SubmitQuery(session_id=sid, readings=_readings(1))
    )
    assert len(reply.nodes) == 2
    assert reply.energy_mj > 0
    plan_reply = service.handle(msg.GetPlan(session_id=sid))
    plan = plan_from_dict(
        plan_reply.plan, service.topology(opened.topology_id)
    )
    assert plan.bandwidths
    closed = service.handle(msg.CloseSession(session_id=sid))
    assert closed.total_energy_mj > 0
    with pytest.raises(SessionError, match="closed"):
        service.handle(msg.SubmitQuery(session_id=sid, readings=_readings()))


def test_unknown_session(service):
    with pytest.raises(SessionError, match="unknown session"):
        service.handle(msg.GetPlan(session_id="s9999"))


def test_admission_control_rejects_beyond_capacity(service):
    _open(service)
    _open(service)
    with pytest.raises(AdmissionError, match="at capacity"):
        _open(service)


def test_closing_frees_an_admission_slot(service):
    _open(service)
    second = _open(service)
    service.handle(msg.CloseSession(session_id=second.session_id))
    _open(service)  # does not raise


def test_idle_sessions_expire_and_free_slots(service, clock):
    first = _open(service)
    clock.now = 61.0  # past the 60 s TTL
    with pytest.raises(SessionError, match="expired"):
        service.handle(
            msg.FeedSample(session_id=first.session_id, readings=_readings())
        )
    # the expired session no longer counts against admission
    _open(service)
    _open(service)


def test_activity_refreshes_the_idle_clock(service, clock):
    opened = _open(service)
    clock.now = 50.0
    service.handle(
        msg.FeedSample(session_id=opened.session_id, readings=_readings())
    )
    clock.now = 100.0  # 50 s idle < TTL, measured from last use
    service.handle(
        msg.FeedSample(session_id=opened.session_id, readings=_readings(1))
    )


def test_overload_sheds_when_queue_is_full(service):
    opened = _open(service)
    session = service.session(opened.session_id)
    started = threading.Barrier(service.config.queue_limit + 1)
    release = threading.Event()
    failures = []

    def occupant():
        started.wait()
        try:
            with session.slot():
                release.wait(timeout=10)
        except OverloadError:  # pragma: no cover - should not shed here
            failures.append("occupant shed")

    threads = [
        threading.Thread(target=occupant)
        for __ in range(service.config.queue_limit)
    ]
    for t in threads:
        t.start()
    started.wait()
    deadline = time.monotonic() + 10
    while session._pending < service.config.queue_limit:
        assert time.monotonic() < deadline
        time.sleep(0.001)
    with pytest.raises(OverloadError, match="shed"):
        service.handle(
            msg.FeedSample(session_id=opened.session_id, readings=_readings())
        )
    release.set()
    for t in threads:
        t.join()
    assert not failures
    assert session.requests_shed == 1


# -- shared caches across sessions -----------------------------------------


def test_two_sessions_share_one_compiled_form():
    """The headline multi-tenancy property: two sessions on the same
    topology with identical windows produce exactly one
    ``fastbuild.compile`` span — the second session's plan is a pure
    shared-cache hit."""
    obs = Instrumentation()
    service = TopKService(instrumentation=obs)
    topology_id = service.register_topology(PARENTS)
    sessions = [
        service.handle(
            msg.OpenSession(topology_id=topology_id, k=2, budget_mj=60.0)
        )
        for __ in range(2)
    ]
    warmup = [_readings(seed) for seed in range(3)]
    for opened in sessions:
        for row in warmup:
            service.handle(
                msg.FeedSample(session_id=opened.session_id, readings=row)
            )
    replies = [
        service.handle(
            msg.SubmitQuery(session_id=opened.session_id,
                            readings=_readings(7))
        )
        for opened in sessions
    ]
    assert replies[0].nodes == replies[1].nodes
    compile_spans = obs.spans.find("compile")
    assert len(compile_spans) == 1
    assert service.cache.hits == 1
    assert service.cache.misses == 1
    assert obs.counter("service.cache.hits").value == 1


def test_different_windows_compile_separately():
    service = TopKService()
    topology_id = service.register_topology(PARENTS)
    for seed in range(2):
        opened = service.handle(
            msg.OpenSession(topology_id=topology_id, k=2, budget_mj=60.0)
        )
        service.handle(
            msg.FeedSample(
                session_id=opened.session_id, readings=_readings(seed)
            )
        )
        service.handle(
            msg.SubmitQuery(
                session_id=opened.session_id, readings=_readings(9)
            )
        )
    assert service.cache.misses == 2
    assert service.cache.hits == 0


# -- observability ----------------------------------------------------------


def test_per_session_energy_ledgers_are_isolated(service):
    first = _open(service)
    second = _open(service)
    service.handle(
        msg.FeedSample(session_id=first.session_id, readings=_readings())
    )
    service.handle(
        msg.SubmitQuery(session_id=first.session_id, readings=_readings(1))
    )
    busy = service.ledger_of(first.session_id)
    idle = service.ledger_of(second.session_id)
    assert busy.energy_mj.sum() > 0
    assert idle.energy_mj.sum() == 0


def test_stats_reply_summarizes_service_state(service, clock):
    opened = _open(service)
    service.handle(
        msg.FeedSample(session_id=opened.session_id, readings=_readings())
    )
    stats = service.handle(msg.GetStats())
    assert stats.sessions_open == 1
    assert stats.sessions_total == 1
    assert stats.topologies == 1
    assert stats.counters["requests_handled"] == 1
    assert "cache" in stats.counters


def test_request_spans_and_counters(clock):
    obs = Instrumentation()
    service = TopKService(instrumentation=obs, clock=clock)
    topology_id = service.register_topology(PARENTS)
    opened = service.handle(
        msg.OpenSession(topology_id=topology_id, k=2, budget_mj=60.0)
    )
    service.handle(
        msg.FeedSample(session_id=opened.session_id, readings=_readings())
    )
    assert obs.counter("service.requests").value == 2
    assert obs.counter("service.requests.feed_sample").value == 1
    assert len(obs.spans.find("service.request")) == 2


def test_error_counters_track_typed_failures(clock):
    obs = Instrumentation()
    service = TopKService(instrumentation=obs, clock=clock)
    with pytest.raises(SessionError):
        service.handle(msg.GetPlan(session_id="sX"))
    assert obs.counter("service.errors.SessionError").value == 1


# -- line transport ---------------------------------------------------------


def test_handle_line_round_trip(service):
    line = msg.encode(msg.RegisterTopology(parents=PARENTS))
    reply = msg.decode(service.handle_line(line))
    assert isinstance(reply, msg.TopologyRegistered)


def test_handle_line_serializes_typed_errors(service):
    reply = msg.decode(
        service.handle_line(msg.encode(msg.GetPlan(session_id="sX")))
    )
    assert isinstance(reply, msg.ErrorReply)
    assert reply.error == "SessionError"


def test_handle_line_survives_garbage(service):
    reply = msg.decode(service.handle_line("{{{{ not json"))
    assert isinstance(reply, msg.ErrorReply)
    assert reply.error == "ServiceError"


def test_handle_rejects_reply_kinds(service):
    with pytest.raises(ServiceError, match="reply kind"):
        service.handle(msg.SessionClosed(session_id="s1"))
