"""Batched queries: bitwise parity with the scalar path — engine,
service (both codecs), and sharded deployments."""

import numpy as np
import pytest

from repro.datagen.gaussian import random_gaussian_field
from repro.errors import SamplingError
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.obs.energy import EnergyLedger
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.query.engine import EngineConfig, TopKEngine
from repro.service import messages as msg
from repro.service.client import SocketClient
from repro.service.server import ServiceConfig, ServiceThread, TopKService

PARENTS = (-1, 0, 0, 1, 1, 2, 5)


def _engine(topology, seed=0, **kwargs):
    return TopKEngine(
        topology,
        EnergyModel.mica2(),
        k=4,
        planner=LPNoLFPlanner(),
        config=EngineConfig(budget_mj=400.0),
        rng=np.random.default_rng(seed),
        **kwargs,
    )


@pytest.fixture
def setting():
    rng = np.random.default_rng(9)
    topology = random_topology(30, rng=rng)
    field = random_gaussian_field(30, rng)
    return rng, topology, field


def _scalar_outcome(engine, matrix):
    results = [engine.query(row) for row in matrix]
    return (
        tuple(tuple(int(n) for __, n in r.returned) for r in results),
        tuple(tuple(float(v) for v, __ in r.returned) for r in results),
        tuple(float(r.energy_mj) for r in results),
        tuple(float(r.accuracy) for r in results),
        engine.total_energy_mj,
    )


def _fed(engine, field, rng, epochs=8):
    for __ in range(epochs):
        engine.feed_sample(field.sample(rng))
    return engine


class TestEngineBatch:
    def test_batch_is_bitwise_identical_to_scalar(self, setting):
        rng, topology, field = setting
        matrix = np.array([field.sample(rng) for __ in range(10)])
        scalar = _fed(_engine(topology), field, np.random.default_rng(9))
        batched = _fed(_engine(topology), field, np.random.default_rng(9))

        want = _scalar_outcome(scalar, matrix)
        got = batched.query_batch(matrix)
        assert got.nodes == want[0]
        assert got.values == want[1]
        assert got.energies == want[2]
        assert got.accuracies == want[3]
        assert batched.total_energy_mj == want[4]

    def test_batch_rows_helper_matches_query_results(self, setting):
        rng, topology, field = setting
        matrix = np.array([field.sample(rng) for __ in range(4)])
        engine = _fed(_engine(topology), field, rng)
        batch = engine.query_batch(matrix)
        assert batch.num_epochs == 4
        for i, row in enumerate(batch.rows()):
            assert row.energy_mj == batch.energies[i]
            assert tuple(n for __, n in row.returned) == batch.nodes[i]

    def test_batch_requires_a_matrix(self, setting):
        __, topology, __ = setting
        engine = _engine(topology)
        with pytest.raises(SamplingError, match="matrix"):
            engine.query_batch(np.zeros(topology.n))

    def test_empty_batch_returns_empty_result(self, setting):
        rng, topology, field = setting
        engine = _fed(_engine(topology), field, rng)
        got = engine.query_batch(np.zeros((0, topology.n)))
        assert got.num_epochs == 0
        assert got.nodes == ()

    def test_failure_model_falls_back_to_scalar_loop(self, setting):
        rng, topology, field = setting
        matrix = np.array([field.sample(rng) for __ in range(5)])

        def build():
            failures = LinkFailureModel.uniform(
                topology, probability=0.3, reroute_extra_mj=1.0
            )
            return _fed(
                _engine(topology, failures=failures),
                field,
                np.random.default_rng(9),
            )

        want = _scalar_outcome(build(), matrix)
        got_engine = build()
        got = got_engine.query_batch(matrix)
        # same rng stream as the scalar loop: identical draws, energies
        assert got.nodes == want[0]
        assert got.values == want[1]
        assert got.energies == want[2]
        assert got_engine.total_energy_mj == want[4]

    def test_ledger_falls_back_to_scalar_loop(self, setting):
        rng, topology, field = setting
        matrix = np.array([field.sample(rng) for __ in range(5)])

        def build():
            ledger = EnergyLedger(topology.n, capacity_mj=300.0)
            return _fed(
                _engine(topology, ledger=ledger),
                field,
                np.random.default_rng(9),
            )

        want_engine = build()
        want = _scalar_outcome(want_engine, matrix)
        got_engine = build()
        got = got_engine.query_batch(matrix)
        assert got.energies == want[2]
        assert got_engine.total_energy_mj == want[4]
        # per-node round-off identical too
        assert np.array_equal(
            got_engine.ledger.energy_mj, want_engine.ledger.energy_mj
        )

    def test_topology_change_rebuilds_batch_simulator(self, setting):
        rng, topology, field = setting
        engine = _fed(_engine(topology), field, rng)
        matrix = np.array([field.sample(rng) for __ in range(2)])
        engine.query_batch(matrix)
        first = engine._batch_simulator
        assert first is not None
        engine.query_batch(matrix)
        assert engine._batch_simulator is first  # cached across calls


class TestServiceBatch:
    @pytest.mark.parametrize("protocol", ["v1", "v2"])
    def test_batch_matches_scalar_over_the_wire(self, protocol):
        rng = np.random.default_rng(3)
        feed = [tuple(rng.uniform(0, 100, len(PARENTS))) for __ in range(4)]
        rows = [tuple(rng.uniform(0, 100, len(PARENTS))) for __ in range(5)]

        def open_fed(client):
            topology_id = client.register_topology(PARENTS)
            session = client.open_session(topology_id, 2, budget_mj=500.0)
            for row in feed:
                session.feed(row)
            return session

        with ServiceThread(TopKService()) as live:
            with SocketClient(
                live.host, live.port, protocol=protocol
            ) as client:
                scalar = open_fed(client)
                batched = open_fed(client)
                replies = [scalar.query(row) for row in rows]
                batch = batched.query_batch(np.array(rows))
        assert batch.nodes == tuple(r.nodes for r in replies)
        assert batch.values == tuple(r.values for r in replies)
        assert batch.energies == tuple(r.energy_mj for r in replies)
        assert batch.accuracies == tuple(r.accuracy for r in replies)

    def test_batch_pipelines_with_nowait(self):
        rng = np.random.default_rng(3)
        matrix = np.array(
            [rng.uniform(0, 100, len(PARENTS)) for __ in range(3)]
        )
        with ServiceThread(TopKService()) as live:
            with SocketClient(live.host, live.port, protocol="v2") as client:
                topology_id = client.register_topology(PARENTS)
                session = client.open_session(
                    topology_id, 2, budget_mj=500.0
                )
                for row in matrix:
                    session.feed_nowait(tuple(row))
                session.query_batch_nowait(matrix)
                replies = client.drain()
        assert isinstance(replies[-1], msg.BatchReply)
        assert len(replies[-1].energies) == 3

    def test_batch_on_expired_session_is_a_session_error(self):
        from repro.errors import SessionError

        with ServiceThread(TopKService()) as live:
            with SocketClient(live.host, live.port, protocol="v2") as client:
                with pytest.raises(SessionError):
                    client.request(
                        msg.SubmitBatch(
                            session_id="nope", readings=((1.0,),)
                        )
                    )
