"""Cross-process artifact store: exact round trips, graceful misses."""

import json

import numpy as np
import pytest

from repro.lp.fastbuild import compile_lp_lf_parametric
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.sampling.matrix import SampleMatrix
from repro.service.artifacts import ArtifactStore, key_digest
from repro.service.cache import SharedPlanCache


@pytest.fixture
def context():
    rng = np.random.default_rng(3)
    topology = random_topology(10, rng=rng, radio_range=70.0)
    samples = SampleMatrix(rng.normal(25.0, 3.0, (4, 10)), k=3)
    return PlanningContext(
        topology=topology,
        energy=EnergyModel.mica2(),
        samples=samples,
        k=3,
        budget=40.0,
    )


@pytest.fixture
def compiled(context):
    return compile_lp_lf_parametric(context)


def _key(context):
    return SharedPlanCache().key_for("lp_lf", context)


def test_round_trip_is_exact(tmp_path, context, compiled):
    store = ArtifactStore(tmp_path)
    key = _key(context)
    assert store.save(key, compiled)
    loaded = store.load(key)
    assert loaded is not None

    a, b = compiled.compiled, loaded.compiled
    assert a.name == b.name
    assert a.column_names == b.column_names
    assert a.primary_columns == b.primary_columns
    np.testing.assert_array_equal(a.form.c, b.form.c)
    np.testing.assert_array_equal(a.form.b_ub, b.form.b_ub)
    np.testing.assert_array_equal(a.form.b_eq, b.form.b_eq)
    np.testing.assert_array_equal(
        np.asarray(a.form.a_ub.todense()), np.asarray(b.form.a_ub.todense())
    )
    np.testing.assert_array_equal(
        np.asarray(a.form.a_eq.todense()), np.asarray(b.form.a_eq.todense())
    )
    assert a.form.bounds == b.form.bounds
    assert a.form.objective_constant == b.form.objective_constant
    assert a.form.maximize == b.form.maximize
    assert loaded.row == compiled.row
    # the parametric slot is reconstructed bitwise: same closure values
    for budget in (0.0, 17.25, 40.0, 1e6):
        assert loaded.rhs_of(budget) == compiled.rhs_of(budget)
    assert store.stats()["saves"] == 1
    assert store.stats()["disk_hits"] == 1


def test_loaded_matrices_are_memory_mapped(tmp_path, context, compiled):
    store = ArtifactStore(tmp_path)
    key = _key(context)
    store.save(key, compiled)
    loaded = store.load(key)
    assert isinstance(loaded.compiled.form.a_ub.data, np.memmap)


def test_absent_key_is_a_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    assert store.load(("lp_lf", "nope")) is None
    assert store.stats()["disk_misses"] == 1


def test_corrupt_entry_degrades_to_miss(tmp_path, context, compiled):
    store = ArtifactStore(tmp_path)
    key = _key(context)
    store.save(key, compiled)
    (store.path_for(key) / "meta.json").write_text("{not json")
    assert store.load(key) is None
    assert store.stats()["disk_misses"] == 1


def test_foreign_key_collision_is_a_miss(tmp_path, context, compiled):
    """A digest collision (or tampered entry) is detected by key_repr."""
    store = ArtifactStore(tmp_path)
    key = _key(context)
    store.save(key, compiled)
    meta_path = store.path_for(key) / "meta.json"
    meta = json.loads(meta_path.read_text())
    meta["key_repr"] = "something else"
    meta_path.write_text(json.dumps(meta))
    assert store.load(key) is None


def test_save_skips_forms_without_affine_rhs(tmp_path, compiled, context):
    from dataclasses import replace

    store = ArtifactStore(tmp_path)
    opaque = replace(compiled, rhs_intercept=None)
    assert not store.save(_key(context), opaque)
    assert len(store) == 0


def test_save_is_idempotent(tmp_path, context, compiled):
    store = ArtifactStore(tmp_path)
    key = _key(context)
    assert store.save(key, compiled)
    assert store.save(key, compiled)
    assert store.stats()["saves"] == 1
    assert len(store) == 1


def test_prune_bounds_entries(tmp_path, context, compiled):
    store = ArtifactStore(tmp_path, max_entries=2)
    for index in range(4):
        store.save(("lp_lf", f"variant-{index}"), compiled)
    assert len(store) == 2


def test_key_digest_is_stable():
    key = ("lp_lf", "tok", 3, (1.0, 2.0), "abcd")
    assert key_digest(key) == key_digest(("lp_lf", "tok", 3, (1.0, 2.0), "abcd"))
    assert key_digest(key) != key_digest(("lp_no_lf",) + key[1:])


def test_cold_cache_loads_instead_of_recompiling(tmp_path, context, compiled):
    """Two pools sharing one store: the second never calls compile."""
    store_dir = tmp_path / "artifacts"
    warm = SharedPlanCache(artifacts=ArtifactStore(store_dir))
    compiles = []

    def compile_fn():
        compiles.append(1)
        return compile_lp_lf_parametric(context)

    first = warm.parametric("lp_lf", context, compile_fn)
    assert len(compiles) == 1
    assert warm.artifacts.stats()["saves"] == 1

    cold = SharedPlanCache(artifacts=ArtifactStore(store_dir))

    def must_not_compile():
        raise AssertionError("cold pool recompiled a stored artifact")

    second = cold.parametric("lp_lf", context, must_not_compile)
    assert cold.artifacts.stats()["disk_hits"] == 1
    np.testing.assert_array_equal(
        first.compiled.form.c, second.compiled.form.c
    )
    assert first.rhs_of(context.budget) == second.rhs_of(context.budget)
    assert cold.stats()["artifacts"]["disk_hits"] == 1


def test_loaded_form_solves_identically(tmp_path, context, compiled):
    from repro.lp.backend import get_backend

    store = ArtifactStore(tmp_path)
    key = _key(context)
    store.save(key, compiled)
    loaded = store.load(key)
    backend = get_backend("pure-simplex")
    ladder = [context.budget * f for f in (0.8, 1.0, 1.2)]
    originals = backend.solve_sweep(compiled, ladder)
    revived = backend.solve_sweep(loaded, ladder)
    for a, b in zip(originals, revived):
        np.testing.assert_array_equal(a.values, b.values)
        assert a.objective == b.objective
