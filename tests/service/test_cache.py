"""SharedPlanCache: content keying, LRU bounds, exactly-once compiles."""

import threading

import numpy as np
import pytest

from repro.network.builder import line_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlannerConfig, PlanningContext
from repro.planners.lp_lf import LPLFPlanner
from repro.sampling.matrix import SampleMatrix
from repro.service.cache import SharedPlanCache, samples_digest


def _context(topology=None, k=2, budget=60.0, seed=0, samples=None):
    topology = topology or line_topology(5)
    if samples is None:
        samples = SampleMatrix(
            np.random.default_rng(seed).normal(25, 3, (6, topology.n)), k=k
        )
    return PlanningContext(
        topology=topology,
        energy=EnergyModel.mica2(),
        samples=samples,
        k=k,
        budget=budget,
    )


def test_equal_content_hits_across_distinct_objects():
    pool = SharedPlanCache()
    compiles = []

    def compile_fn():
        compiles.append(1)
        return object()

    a = pool.parametric("lp-lf", _context(), compile_fn)
    # everything rebuilt from scratch, same content
    b = pool.parametric("lp-lf", _context(), compile_fn)
    assert a is b
    assert compiles == [1]
    assert (pool.hits, pool.misses) == (1, 1)


def test_key_varies_by_each_component():
    pool = SharedPlanCache()
    base = _context()
    variants = [
        _context(topology=line_topology(6)),           # structure
        _context(k=3),                                  # k
        _context(seed=1),                               # sample content
    ]
    keys = {pool.key_for("lp-lf", base)}
    keys.add(pool.key_for("lp-no-lf", base))            # formulation
    for variant in variants:
        keys.add(pool.key_for("lp-lf", variant))
    assert len(keys) == 5
    # budget is parametric, NOT part of the key
    assert pool.key_for("lp-lf", base) == pool.key_for(
        "lp-lf", _context(budget=120.0)
    )


def test_samples_digest_tracks_values_shape_and_k():
    rng = np.random.default_rng(3)
    values = rng.normal(25, 3, (4, 5))
    a = samples_digest(SampleMatrix(values, k=2))
    assert a == samples_digest(SampleMatrix(values.copy(), k=2))
    assert a != samples_digest(SampleMatrix(values, k=3))
    assert a != samples_digest(SampleMatrix(values + 1e-9, k=2))


def test_lru_eviction_is_counted_and_bounded():
    pool = SharedPlanCache(capacity=2)
    contexts = [_context(seed=s) for s in range(3)]
    for context in contexts:
        pool.parametric("lp-lf", context, object)
    assert len(pool) == 2
    assert pool.evictions == 1
    # seed-0 was evicted: fetching it again compiles fresh
    pool.parametric("lp-lf", contexts[0], object)
    assert pool.misses == 4


def test_concurrent_cold_key_compiles_exactly_once():
    pool = SharedPlanCache()
    context = _context()
    compiles = []
    barrier = threading.Barrier(6)
    errors = []

    def worker():
        barrier.wait()
        try:
            pool.parametric(
                "lp-lf", context, lambda: compiles.append(1) or object()
            )
        except Exception as err:  # pragma: no cover
            errors.append(err)

    threads = [threading.Thread(target=worker) for __ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert sum(compiles) == 1
    assert pool.hits + pool.misses == 6


def test_counters_mirror_into_instrumentation():
    from repro.obs import Instrumentation

    obs = Instrumentation()
    pool = SharedPlanCache(instrumentation=obs)
    pool.parametric("lp-lf", _context(), object)
    pool.parametric("lp-lf", _context(), object)
    assert obs.counter("service.cache.misses").value == 1
    assert obs.counter("service.cache.hits").value == 1


def test_planner_integration_shares_one_compile():
    """Two independently-built planners over equal-content contexts do
    one compile total; plans are identical."""
    pool = SharedPlanCache()
    shared = PlannerConfig(
        replan_cache=pool.replan_cache, form_cache=pool
    )
    first = LPLFPlanner(config=shared)
    second = LPLFPlanner(config=shared)
    assert first.replan_cache is pool.replan_cache
    plan_a = first.plan(_context())
    plan_b = second.plan(_context())
    assert plan_a.bandwidths == plan_b.bandwidths
    assert pool.misses == 1
    assert pool.hits == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        SharedPlanCache(capacity=0)
