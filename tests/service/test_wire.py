"""Binary protocol v2: exact round-trips on both codecs, strictness,
and the shared-memory blob fast path."""

import math
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.service import messages as msg
from repro.service import wire
from repro.service.artifacts import BlobSpool

EXAMPLES = [
    msg.RegisterTopology(parents=(-1, 0, 0, 1, 1)),
    msg.OpenSession(
        topology_id="abc123", k=3, planner="lp-no-lf", budget_mj=75.5,
        window_capacity=10, replan_every=4, track_truth=False,
    ),
    msg.FeedSample(session_id="s0001", readings=(1.0, 2.5, -3.75)),
    msg.SubmitQuery(session_id="s0001", readings=(0.5, 0.25, 0.125)),
    msg.StepEpoch(session_id="s0002", readings=(9.0, 8.0, 7.0)),
    msg.SubmitBatch(
        session_id="s0001",
        readings=((1.0, 2.0, 3.0), (4.0, 5.0, 6.0)),
    ),
    msg.GetPlan(session_id="s0001"),
    msg.CloseSession(session_id="s0001"),
    msg.GetStats(),
    msg.TopologyRegistered(topology_id="abc123", num_nodes=5),
    msg.SessionOpened(
        session_id="s0001", topology_id="abc123", planner="lp-lf"
    ),
    msg.SampleAccepted(session_id="s0001", window_size=4),
    msg.QueryReply(
        session_id="s0001", nodes=(3, 1), values=(9.5, 7.25),
        energy_mj=12.5, accuracy=0.5,
    ),
    msg.QueryReply(session_id="s0001", accuracy=None),
    msg.StepReply(
        session_id="s0001", epoch=7, action="query", energy_mj=3.5,
        nodes=(2,), values=(4.5,), accuracy=1.0,
    ),
    msg.StepReply(session_id="s0001", epoch=8, action="sample"),
    msg.BatchReply(
        session_id="s0001",
        nodes=((3, 1), (2,)),
        values=((9.5, 7.25), (4.5,)),
        energies=(12.5, 3.5),
        accuracies=(0.5, None),
    ),
    msg.PlanReply(
        session_id="s0001",
        plan={"format_version": 1, "bandwidths": {"1": 2}},
    ),
    msg.SessionClosed(session_id="s0001", epochs=9, total_energy_mj=101.5),
    msg.StatsReply(
        sessions_open=2, sessions_total=5, topologies=1,
        counters={"cache": {"hits": 3}},
    ),
    msg.ErrorReply(error="OverloadError", message="shed"),
]

_IDS = [type(m).__name__ + (".empty" if not m.to_dict() else "")
        for m in EXAMPLES]


def _examples_cover_every_kind():
    return {m.kind for m in EXAMPLES} == set(msg.MESSAGE_KINDS)


def test_examples_cover_every_registered_kind():
    assert _examples_cover_every_kind(), (
        set(msg.MESSAGE_KINDS) - {m.kind for m in EXAMPLES}
    )


@pytest.mark.parametrize("message", EXAMPLES, ids=lambda m: type(m).__name__)
def test_v2_exact_round_trip(message):
    frame = wire.encode_frame(message)
    body = frame[4:]
    assert struct.unpack(">I", frame[:4])[0] == len(body)
    rehydrated, cid = wire.decode_frame(body)
    assert cid is None
    assert rehydrated == message
    assert type(rehydrated) is type(message)
    # stable under a second pass (no lossy normalization)
    assert wire.encode_frame(rehydrated) == frame


@pytest.mark.parametrize("message", EXAMPLES, ids=lambda m: type(m).__name__)
def test_v1_exact_round_trip(message):
    line = msg.encode(message)
    rehydrated = msg.decode(line)
    assert rehydrated == message
    assert msg.encode(rehydrated) == line


def test_cid_rides_the_header():
    for cid in (0, 1, 7, 2**32, 2**64 - 1):
        frame = wire.encode_frame(msg.GetStats(), cid=cid)
        __, echoed = wire.decode_frame(frame[4:])
        assert echoed == cid
    with pytest.raises(ProtocolError):
        wire.encode_frame(msg.GetStats(), cid=2**64)
    with pytest.raises(ProtocolError):
        wire.encode_frame(msg.GetStats(), cid=-1)


def test_kind_codes_are_pinned():
    """Wire codes are protocol: new kinds append, old codes never move."""
    assert wire.KIND_CODES == {
        "register_topology": 1,
        "open_session": 2,
        "feed_sample": 3,
        "submit_query": 4,
        "step_epoch": 5,
        "get_plan": 6,
        "close_session": 7,
        "get_stats": 8,
        "submit_batch": 9,
        "topology_registered": 10,
        "session_opened": 11,
        "sample_accepted": 12,
        "query_reply": 13,
        "step_reply": 14,
        "plan_reply": 15,
        "session_closed": 16,
        "stats_reply": 17,
        "error": 18,
        "batch_reply": 19,
    }
    assert set(wire.KIND_CODES) == set(msg.MESSAGE_KINDS)
    assert set(wire._FIELD_SPECS) == set(msg.MESSAGE_KINDS)


# -- property tests over both codecs ---------------------------------------

_finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
_session = st.text(min_size=0, max_size=12)
_fvec = st.lists(_finite, max_size=6).map(tuple)
_ivec = st.lists(
    st.integers(min_value=-(2**62), max_value=2**62), max_size=6
).map(tuple)


def _both_codecs_round_trip(message):
    assert msg.decode(msg.encode(message)) == message
    decoded, __ = wire.decode_frame(wire.encode_frame(message)[4:])
    assert decoded == message


@settings(max_examples=60, deadline=None)
@given(session_id=_session, readings=_fvec)
def test_feed_sample_round_trips_on_both_codecs(session_id, readings):
    _both_codecs_round_trip(
        msg.FeedSample(session_id=session_id, readings=readings)
    )


@settings(max_examples=60, deadline=None)
@given(
    session_id=_session,
    nodes=_ivec,
    values=_fvec,
    energy_mj=_finite,
    accuracy=st.none() | _finite,
)
def test_query_reply_round_trips_on_both_codecs(
    session_id, nodes, values, energy_mj, accuracy
):
    _both_codecs_round_trip(
        msg.QueryReply(
            session_id=session_id, nodes=nodes, values=values,
            energy_mj=energy_mj, accuracy=accuracy,
        )
    )


@settings(max_examples=60, deadline=None)
@given(
    session_id=_session,
    rows=st.integers(min_value=0, max_value=4),
    cols=st.integers(min_value=1, max_value=5),
    data=st.data(),
)
def test_submit_batch_round_trips_on_both_codecs(
    session_id, rows, cols, data
):
    matrix = tuple(
        tuple(
            data.draw(_finite) for __ in range(cols)
        )
        for __ in range(rows)
    )
    _both_codecs_round_trip(
        msg.SubmitBatch(session_id=session_id, readings=matrix)
    )


@settings(max_examples=60, deadline=None)
@given(
    session_id=_session,
    energies=_fvec,
    accuracies=st.lists(st.none() | _finite, max_size=6).map(tuple),
    data=st.data(),
)
def test_batch_reply_round_trips_on_both_codecs(
    session_id, energies, accuracies, data
):
    rows = len(energies)
    nodes = tuple(data.draw(_ivec) for __ in range(rows))
    values = tuple(data.draw(_fvec) for __ in range(rows))
    _both_codecs_round_trip(
        msg.BatchReply(
            session_id=session_id, nodes=nodes, values=values,
            energies=energies, accuracies=accuracies,
        )
    )


# -- strictness: the codecs reject what v1 rejects --------------------------

@pytest.mark.parametrize(
    "message",
    [
        msg.QueryReply(session_id="s1", accuracy=float("nan")),
        msg.QueryReply(session_id="s1", values=(float("inf"),)),
        msg.FeedSample(session_id="s1", readings=(1.0, float("nan"))),
        msg.SubmitBatch(session_id="s1", readings=((float("-inf"),),)),
        msg.BatchReply(session_id="s1", energies=(float("nan"),)),
    ],
    ids=["nan-optf", "inf-fvec", "nan-fvec", "inf-fmat", "nan-energies"],
)
def test_non_finite_floats_are_rejected_by_both_codecs(message):
    with pytest.raises(ValueError):
        msg.encode(message)
    with pytest.raises(ProtocolError):
        wire.encode_frame(message)


def test_trailing_bytes_are_rejected():
    """The binary analog of v1's unknown-field rejection."""
    frame = wire.encode_frame(msg.GetPlan(session_id="s9"))
    with pytest.raises(ProtocolError, match="trailing"):
        wire.decode_frame(frame[4:] + b"\x00")


def test_v1_unknown_fields_are_rejected():
    from repro.errors import ServiceError

    with pytest.raises(ServiceError, match="unknown field"):
        msg.decode('{"kind": "get_plan", "bogus_field": 1}')


def test_truncated_payload_is_rejected():
    frame = wire.encode_frame(
        msg.FeedSample(session_id="s0001", readings=(1.0, 2.0, 3.0))
    )
    body = frame[4:]
    for cut in range(wire._HEADER.size, len(body)):
        with pytest.raises(ProtocolError):
            wire.decode_frame(body[:cut])


def test_unknown_kind_code_and_flags_are_rejected():
    good = wire.encode_frame(msg.GetStats())[4:]
    with pytest.raises(ProtocolError, match="kind code"):
        wire.decode_frame(bytes([255]) + good[1:])
    with pytest.raises(ProtocolError, match="flag bits"):
        wire.decode_frame(good[:1] + bytes([0x80]) + good[2:])


def test_oversized_frame_is_rejected_on_encode():
    big = msg.SubmitBatch(
        session_id="s1",
        readings=np.zeros((600, 300)),
    )
    with pytest.raises(ProtocolError, match="protocol limit"):
        wire.encode_frame(big)


def test_zero_copy_array_mode():
    matrix = np.arange(12.0).reshape(3, 4)
    frame = wire.encode_frame(msg.SubmitBatch(session_id="s", readings=matrix))
    decoded, __ = wire.decode_frame(frame[4:], vectors="array")
    arr = decoded.readings
    assert isinstance(arr, np.ndarray)
    assert not arr.flags.writeable  # a view over the frame, not a copy
    np.testing.assert_array_equal(arr, matrix)


# -- negotiation lines ------------------------------------------------------

def test_negotiation_lines_round_trip():
    assert wire.parse_hello(wire.hello_line()) == {}
    assert wire.parse_accept(wire.accept_line("/tmp/x")) == {
        "blob_dir": "/tmp/x"
    }
    assert wire.is_negotiation_line(wire.hello_line())
    assert not wire.is_negotiation_line(b'{"kind": "get_stats"}\n')
    assert not wire.is_negotiation_line(b"")


@pytest.mark.parametrize(
    "line",
    [
        b"\x00repro-wire hello v3 {}\n",
        b"\x00repro-wire goodbye v2 {}\n",
        b"\x00not-the-magic hello v2 {}\n",
        b"\x00repro-wire hello v2 [1]\n",
        b"\x00repro-wire hello v2 not-json\n",
        b"\x00repro-wire hello\n",
    ],
)
def test_malformed_negotiation_lines_are_rejected(line):
    with pytest.raises(ProtocolError):
        wire.parse_hello(line)


# -- shared-memory blob fast path ------------------------------------------

def test_blob_spool_round_trip(tmp_path):
    spool = BlobSpool(tmp_path, threshold=64)
    matrix = np.arange(100.0).reshape(10, 10)
    small = np.zeros((2, 2))

    framed = wire.encode_frame(
        msg.SubmitBatch(session_id="s", readings=matrix), spool=spool
    )
    inline = wire.encode_frame(
        msg.SubmitBatch(session_id="s", readings=matrix)
    )
    # the blob reference is tiny next to the 800-byte inline matrix
    assert len(framed) < len(inline) / 4
    assert len(spool) == 1

    decoded, __ = wire.decode_frame(framed[4:], spool=spool)
    assert decoded == msg.SubmitBatch(
        session_id="s", readings=tuple(map(tuple, matrix.tolist()))
    )
    mapped, __ = wire.decode_frame(framed[4:], vectors="array", spool=spool)
    np.testing.assert_array_equal(mapped.readings, matrix)

    # under the threshold the matrix stays inline (no spool growth)
    wire.encode_frame(
        msg.SubmitBatch(session_id="s", readings=small), spool=spool
    )
    assert len(spool) == 1

    # identical content re-spills to the same name (content addressing)
    again = wire.encode_frame(
        msg.SubmitBatch(session_id="s", readings=matrix), spool=spool
    )
    assert again == framed
    assert len(spool) == 1


def test_blob_reference_without_spool_is_rejected(tmp_path):
    spool = BlobSpool(tmp_path, threshold=64)
    framed = wire.encode_frame(
        msg.SubmitBatch(session_id="s", readings=np.ones((8, 8))),
        spool=spool,
    )
    with pytest.raises(ProtocolError, match="no spool"):
        wire.decode_frame(framed[4:])


@pytest.mark.parametrize(
    "name",
    [
        "../../etc/passwd",
        "..%2fescape.npy",
        "/abs/path.npy",
        "nothex!.npy",
        "deadbeef.txt",
        "ab.npy",  # too-short stem
        "",
    ],
)
def test_blob_names_are_strictly_validated(tmp_path, name):
    spool = BlobSpool(tmp_path)
    with pytest.raises(ProtocolError):
        spool.load(name)


def test_missing_blob_is_a_protocol_error(tmp_path):
    spool = BlobSpool(tmp_path)
    with pytest.raises(ProtocolError):
        spool.load("0123456789abcdef.npy")


def test_spill_failure_degrades_to_inline(tmp_path):
    # the spool root's parent is a *file*, so creating it must fail
    blocker = tmp_path / "blocker"
    blocker.write_text("")
    spool = BlobSpool(blocker / "spool", threshold=8)
    matrix = np.ones((4, 4))
    framed = wire.encode_frame(
        msg.SubmitBatch(session_id="s", readings=matrix), spool=spool
    )
    decoded, __ = wire.decode_frame(framed[4:])
    assert decoded.readings == tuple(tuple(r) for r in matrix.tolist())


# -- blocking frame reader --------------------------------------------------

class _Stream:
    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def read(self, n: int) -> bytes:
        chunk = self._data[self._pos : self._pos + n]
        self._pos += len(chunk)
        return chunk


def test_read_frame_blocking_round_trip():
    frame = wire.encode_frame(msg.GetStats(), cid=5)
    stream = _Stream(frame + frame)
    for __ in range(2):
        body = wire.read_frame_blocking(stream)
        decoded, cid = wire.decode_frame(body)
        assert decoded == msg.GetStats() and cid == 5
    assert wire.read_frame_blocking(stream) == b""


@pytest.mark.parametrize(
    "data, match",
    [
        (b"\x00\x00", "truncated frame length prefix"),
        (b"\x00\x00\x00\x20hi", "truncated frame body"),
        (struct.pack(">I", msg.MAX_FRAME_BYTES + 1), "protocol limit"),
        (b"\x00\x00\x00\x01x", "below the header"),
    ],
)
def test_read_frame_blocking_rejects_bad_streams(data, match):
    with pytest.raises(ProtocolError, match=match):
        wire.read_frame_blocking(_Stream(data))
