"""Protocol negotiation: the client/server version matrix, fallback,
mid-connection violations, and reconnect behavior."""

import socket
import struct

import numpy as np
import pytest

from repro.errors import ProtocolError, ServiceError
from repro.service import messages as msg
from repro.service import wire
from repro.service.client import SocketClient
from repro.service.server import ServiceConfig, ServiceThread, TopKService

PARENTS = (-1, 0, 0, 1, 1, 2, 5)


def _server(protocol="auto", **overrides):
    return ServiceThread(TopKService(ServiceConfig(protocol=protocol,
                                                   **overrides)))


def _exercise(client):
    """One full session; returns the replies that carry data."""
    rng = np.random.default_rng(3)
    topology_id = client.register_topology(PARENTS)
    session = client.open_session(topology_id, 2, budget_mj=500.0)
    rows = [tuple(rng.uniform(0, 100, len(PARENTS))) for __ in range(4)]
    for row in rows[:3]:
        session.feed(row)
    reply = session.query(rows[3])
    batch = session.query_batch(np.array(rows))
    return reply, batch


# -- the version matrix -----------------------------------------------------


@pytest.mark.parametrize(
    "server_protocol, client_protocol, negotiated",
    [
        ("auto", "auto", "v2"),
        ("auto", "v2", "v2"),
        ("auto", "v1", "v1"),
        ("v2", "auto", "v2"),
        ("v2", "v2", "v2"),
        ("v1", "v1", "v1"),
        ("v1", "auto", "v1"),
    ],
)
def test_version_matrix(server_protocol, client_protocol, negotiated):
    with _server(server_protocol) as live:
        with SocketClient(
            live.host, live.port, protocol=client_protocol
        ) as client:
            reply, batch = _exercise(client)
            assert client.protocol_version == negotiated
            assert isinstance(reply, msg.QueryReply)
            assert isinstance(batch, msg.BatchReply)
            stats = client.request(msg.GetStats())
            wire_stats = stats.counters["wire"]
            assert wire_stats["connections"][negotiated] == 1


def test_results_are_identical_across_the_matrix():
    outcomes = []
    for server_protocol, client_protocol in [
        ("auto", "v1"), ("auto", "v2"), ("v1", "v1"), ("v2", "v2")
    ]:
        with _server(server_protocol) as live:
            with SocketClient(
                live.host, live.port, protocol=client_protocol
            ) as client:
                outcomes.append(_exercise(client))
    first = outcomes[0]
    for other in outcomes[1:]:
        assert other == first


def test_v1_client_against_v2_required_server():
    with _server("v2") as live:
        with SocketClient(live.host, live.port, protocol="v1") as client:
            with pytest.raises(ProtocolError, match="requires wire protocol"):
                client.request(msg.GetStats())


def test_v2_client_against_v1_only_server():
    with _server("v1") as live:
        with SocketClient(live.host, live.port, protocol="v2") as client:
            with pytest.raises(ProtocolError, match="fallback was disabled"):
                client.request(msg.GetStats())


def test_auto_client_falls_back_and_still_works():
    with _server("v1") as live:
        with SocketClient(live.host, live.port, protocol="auto") as client:
            reply, batch = _exercise(client)
            assert client.protocol_version == "v1"
            assert isinstance(reply, msg.QueryReply)
            assert isinstance(batch, msg.BatchReply)


def test_client_rejects_unknown_protocol_name():
    with pytest.raises(ServiceError, match="unknown wire protocol"):
        SocketClient("127.0.0.1", 1, protocol="v3")


def test_server_rejects_unknown_protocol_name():
    with pytest.raises(ServiceError, match="protocol"):
        ServiceConfig(protocol="v3")


# -- mid-connection violations ----------------------------------------------


def _negotiate_raw(live):
    raw = socket.create_connection((live.host, live.port), timeout=10)
    raw.settimeout(10)
    handle = raw.makefile("rwb")
    handle.write(wire.hello_line())
    handle.flush()
    answer = handle.readline()
    assert wire.is_negotiation_line(answer)
    wire.parse_accept(answer)
    return raw, handle


def _read_error_frame(handle):
    body = wire.read_frame_blocking(handle)
    reply, __ = wire.decode_frame(body)
    assert isinstance(reply, msg.ErrorReply)
    return reply


def test_garbage_frame_body_gets_error_reply_and_survives():
    """A well-framed but undecodable body is a per-request error —
    the v2 analog of v1's garbage-line ErrorReply — and the
    connection keeps serving."""
    with _server("auto") as live:
        raw, handle = _negotiate_raw(live)
        try:
            # a plausible length prefix fronting a nonsense body
            handle.write(struct.pack(">I", 16) + b"\xff" * 16)
            handle.flush()
            reply = _read_error_frame(handle)
            assert reply.error == "ProtocolError"
            handle.write(wire.encode_frame(msg.GetStats()))
            handle.flush()
            body = wire.read_frame_blocking(handle)
            decoded, __ = wire.decode_frame(body)
            assert isinstance(decoded, msg.StatsReply)
        finally:
            raw.close()


def test_bogus_length_prefix_gets_error_then_close():
    with _server("auto") as live:
        raw, handle = _negotiate_raw(live)
        try:
            handle.write(struct.pack(">I", msg.MAX_FRAME_BYTES + 1))
            handle.flush()
            reply = _read_error_frame(handle)
            assert reply.error == "ProtocolError"
            assert "protocol limit" in reply.message
            assert handle.read(1) == b""
        finally:
            raw.close()


def test_truncated_length_prefix_is_survived():
    """A client dying mid-prefix must not wedge or crash the server."""
    with _server("auto") as live:
        raw, handle = _negotiate_raw(live)
        handle.write(b"\x00\x00")
        handle.flush()
        raw.close()
        # the listener is still healthy for the next client
        with SocketClient(live.host, live.port) as client:
            assert isinstance(client.request(msg.GetStats()), msg.StatsReply)


def test_truncated_frame_body_is_survived():
    with _server("auto") as live:
        raw, handle = _negotiate_raw(live)
        handle.write(struct.pack(">I", 64) + b"\x00" * 10)
        handle.flush()
        raw.close()
        with SocketClient(live.host, live.port) as client:
            assert isinstance(client.request(msg.GetStats()), msg.StatsReply)


def test_malformed_hello_line_gets_v1_error_then_close():
    """A NUL-led line that fails hello validation is answered with a
    readable v1 ErrorReply, then the connection closes — neither side
    can know which framing the other expects next."""
    with _server("auto") as live:
        with socket.create_connection(
            (live.host, live.port), timeout=10
        ) as raw:
            raw.settimeout(10)
            handle = raw.makefile("rwb")
            handle.write(b"\x00repro-wire hello v99 {}\n")
            handle.flush()
            line = handle.readline()
            assert not wire.is_negotiation_line(line)
            reply, __ = msg.decode_envelope(line.decode())
            assert isinstance(reply, msg.ErrorReply)
            assert reply.error == "ProtocolError"
            assert handle.read(1) == b""


def test_v1_garbage_line_behavior_is_unchanged():
    with _server("auto") as live:
        with socket.create_connection(
            (live.host, live.port), timeout=10
        ) as raw:
            raw.settimeout(10)
            handle = raw.makefile("rwb")
            handle.write(b"not json at all {\n")
            handle.flush()
            reply, __ = msg.decode_envelope(handle.readline().decode())
            assert isinstance(reply, msg.ErrorReply)


def test_oversized_v2_frame_from_server_side_client():
    """An oversized *encode* is refused client-side before it ships."""
    with _server("auto") as live:
        with SocketClient(live.host, live.port, protocol="v2") as client:
            topology_id = client.register_topology(PARENTS)
            session = client.open_session(topology_id, 2, budget_mj=500.0)
            with pytest.raises(ProtocolError, match="protocol limit"):
                session.query_batch(np.zeros((25_000, len(PARENTS))))


# -- reconnect --------------------------------------------------------------


def test_reconnect_retry_preserves_negotiated_version():
    for protocol, negotiated in [("v2", "v2"), ("auto", "v2"), ("v1", "v1")]:
        with _server("auto") as live:
            with SocketClient(
                live.host, live.port, protocol=protocol
            ) as client:
                assert isinstance(
                    client.request(msg.GetStats()), msg.StatsReply
                )
                assert client.protocol_version == negotiated
                # sever the transport under the client: the idempotent
                # retry reconnects and re-negotiates the same version
                client._sock.shutdown(socket.SHUT_RDWR)
                assert isinstance(
                    client.request(msg.GetStats()), msg.StatsReply
                )
                assert client.protocol_version == negotiated


def test_wire_stats_expose_bytes_per_request():
    with _server("auto") as live:
        with SocketClient(live.host, live.port, protocol="v2") as client:
            _exercise(client)
            stats = client.request(msg.GetStats())
        with SocketClient(live.host, live.port, protocol="v1") as client:
            _exercise(client)
            stats = client.request(msg.GetStats())
    wire_stats = stats.counters["wire"]
    assert wire_stats["connections"] == {"v1": 1, "v2": 1}
    assert wire_stats["requests"]["v1"] > 0
    assert wire_stats["requests"]["v2"] > 0
    for version in ("v1", "v2"):
        assert wire_stats["bytes_per_request"][version] > 0
        assert wire_stats["request_bytes"][version] > 0
        assert wire_stats["reply_bytes"][version] > 0
