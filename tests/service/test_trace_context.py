"""Trace-context propagation over both wire protocols (S3).

The context must ride a v2 frame's header block and a v1 envelope's
``trace`` field byte-exactly, survive the idempotent reconnect-retry,
and stitch client and server spans under one trace id.
"""

import numpy as np
import pytest

from repro.errors import ProtocolError, ServiceError, ServiceUnavailableError
from repro.obs import Instrumentation, TraceContext
from repro.service import messages as msg
from repro.service import wire
from repro.service.client import SocketClient
from repro.service.server import ServiceConfig, ServiceThread, TopKService

CTX = TraceContext(trace_id=0xDEADBEEF00C0FFEE, parent_span_id=42)


# -- codec round-trips (no sockets) ----------------------------------------


class TestV2Frames:
    def test_trace_block_round_trips(self):
        request = msg.GetStats()
        frame = wire.encode_frame(request, cid=7, trace=CTX)
        decoded, cid, trace = wire.decode_frame_trace(frame[4:])
        assert decoded == request
        assert cid == 7
        assert trace == CTX

    def test_flag_bit_is_set_only_with_a_trace(self):
        flags_with = wire.encode_frame(msg.GetStats(), trace=CTX)[5]
        flags_without = wire.encode_frame(msg.GetStats())[5]
        assert flags_with & wire.FLAG_TRACE
        assert not flags_without & wire.FLAG_TRACE

    def test_legacy_decode_frame_stays_a_two_tuple(self):
        """Old callers keep working: the trace is parsed (not rejected
        as an unknown flag) and simply not returned."""
        frame = wire.encode_frame(msg.GetStats(), trace=CTX)
        assert wire.decode_frame(frame[4:]) == (msg.GetStats(), None)

    def test_truncated_trace_block_is_rejected(self):
        frame = wire.encode_frame(msg.GetStats(), trace=CTX)
        body = frame[4:]
        truncated = body[: wire._HEADER.size + 8]  # half the block
        with pytest.raises(ProtocolError):
            wire.decode_frame_trace(truncated)

    def test_zero_trace_id_is_rejected(self):
        body = bytearray(wire.encode_frame(msg.GetStats(), trace=CTX)[4:])
        offset = wire._HEADER.size
        body[offset : offset + 8] = b"\x00" * 8
        with pytest.raises(ProtocolError):
            wire.decode_frame_trace(bytes(body))

    def test_trace_id_out_of_range_raises_on_encode(self):
        bad = TraceContext(trace_id=5)
        object.__setattr__(bad, "trace_id", 1 << 64)
        with pytest.raises(ProtocolError):
            wire.encode_frame(msg.GetStats(), trace=bad)


class TestV1Envelopes:
    def test_trace_field_round_trips(self):
        request = msg.GetStats()
        line = msg.encode(request, cid=3, trace=CTX)
        decoded, cid, trace = msg.decode_envelope_trace(line)
        assert decoded == request
        assert cid == 3
        assert trace == CTX

    def test_absent_trace_decodes_as_none(self):
        decoded, cid, trace = msg.decode_envelope_trace(
            msg.encode(msg.GetStats())
        )
        assert (decoded, cid, trace) == (msg.GetStats(), None, None)

    def test_legacy_decode_envelope_stays_a_two_tuple(self):
        line = msg.encode(msg.GetStats(), trace=CTX)
        assert msg.decode_envelope(line) == (msg.GetStats(), None)

    @pytest.mark.parametrize("bad", [[0, 0], [1], "x", [1, 2, 3]])
    def test_malformed_trace_field_is_a_service_error(self, bad):
        import json

        envelope = json.loads(msg.encode(msg.GetStats()))
        envelope["trace"] = bad
        with pytest.raises(ServiceError):
            msg.decode_envelope_trace(json.dumps(envelope))


# -- server-side adoption ---------------------------------------------------


class TestServerAdoption:
    def _span_of(self, service):
        (root,) = service.instrumentation.spans.roots
        assert root.name == "service.request"
        return root

    def test_v1_line_annotates_the_request_span(self):
        service = TopKService(instrumentation=Instrumentation())
        service.handle_line(msg.encode(msg.GetStats(), trace=CTX))
        span = self._span_of(service)
        assert span.attributes["trace_id"] == CTX.trace_id
        assert span.attributes["parent_span_id"] == CTX.parent_span_id

    def test_v2_frame_annotates_the_request_span(self):
        service = TopKService(instrumentation=Instrumentation())
        frame = wire.encode_frame(msg.GetStats(), trace=CTX)
        service.handle_frame(frame[4:])
        span = self._span_of(service)
        assert span.attributes["trace_id"] == CTX.trace_id
        assert span.attributes["parent_span_id"] == CTX.parent_span_id

    def test_untraced_requests_leave_spans_unannotated(self):
        service = TopKService(instrumentation=Instrumentation())
        service.handle_line(msg.encode(msg.GetStats()))
        assert "trace_id" not in self._span_of(service).attributes


# -- live sockets -----------------------------------------------------------


def _query_session(client):
    topology_id = client.register_topology((-1, 0, 0, 1, 1))
    session = client.open_session(topology_id, k=2, budget_mj=50.0)
    rng = np.random.default_rng(3)
    for __ in range(3):
        session.feed(rng.normal(25, 3, 5))
    session.query(rng.normal(25, 3, 5))
    session.close()


@pytest.mark.parametrize("protocol", ["v1", "v2"])
def test_client_and_server_spans_share_one_trace_per_request(protocol):
    service = TopKService(
        ServiceConfig(), instrumentation=Instrumentation()
    )
    obs = Instrumentation()
    with ServiceThread(service) as live:
        with SocketClient(
            live.host, live.port, protocol=protocol, instrumentation=obs
        ) as client:
            _query_session(client)
            assert client.protocol_version == protocol
    client_traces = [
        root.attributes["trace_id"] for root in obs.spans.roots
        if root.name == "client.request"
    ]
    server_traces = [
        root.attributes["trace_id"]
        for root in service.instrumentation.spans.roots
        if root.name == "service.request"
    ]
    assert client_traces == server_traces
    assert len(set(client_traces)) == len(client_traces)  # one per request


def test_reconnect_retry_reuses_the_same_trace_id(monkeypatch):
    """The idempotent retry is the same logical request, so both
    attempts must carry the same trace context."""
    service = TopKService(instrumentation=Instrumentation())
    obs = Instrumentation()
    with ServiceThread(service) as live:
        with SocketClient(
            live.host, live.port, instrumentation=obs
        ) as client:
            seen = []
            real = SocketClient._roundtrip

            def flaky(self, request, trace=None):
                seen.append(trace)
                if len(seen) == 1:
                    raise ServiceUnavailableError("connection lost")
                return real(self, request, trace=trace)

            monkeypatch.setattr(SocketClient, "_roundtrip", flaky)
            reply = client.stats()
    assert reply.sessions_open == 0
    assert len(seen) == 2
    assert seen[0] is not None
    assert seen[0].trace_id == seen[1].trace_id
    (root,) = obs.spans.roots
    assert root.attributes["retried"] is True
    assert root.attributes["trace_id"] == seen[0].trace_id


def test_pipelined_frames_carry_per_frame_traces():
    service = TopKService(instrumentation=Instrumentation())
    obs = Instrumentation()
    with ServiceThread(service) as live:
        with SocketClient(
            live.host, live.port, instrumentation=obs
        ) as client:
            client.submit_nowait(msg.GetStats())
            client.submit_nowait(msg.GetStats())
            replies = client.drain()
    assert len(replies) == 2
    submit_traces = [
        root.attributes["trace_id"] for root in obs.spans.roots
        if root.name == "client.submit"
    ]
    server_traces = [
        root.attributes["trace_id"]
        for root in service.instrumentation.spans.roots
        if root.name == "service.request"
    ]
    assert submit_traces == server_traces
    assert len(set(submit_traces)) == 2
