"""Clients: in-process and socket transports behave identically."""

import numpy as np
import pytest

from repro.errors import ServiceError, SessionError
from repro.service import messages as msg
from repro.service.client import InProcessClient, SocketClient, connect
from repro.service.server import ServiceConfig, ServiceThread, TopKService

PARENTS = (-1, 0, 0, 1, 1)


def _rows(n=3, nodes=len(PARENTS)):
    rng = np.random.default_rng(11)
    return [rng.normal(25, 3, nodes) for __ in range(n)]


def _exercise(client):
    """The canonical session flow, transport-agnostic."""
    topology_id = client.register_topology(PARENTS)
    with client.open_session(topology_id, 2, budget_mj=50.0) as session:
        for row in _rows():
            session.feed(row)
        reply = session.query(_rows()[0])
        assert len(reply.nodes) == 2
        assert all(isinstance(n, int) for n in reply.nodes)
        step = session.step(_rows()[1])
        assert step.action in ("query", "sample")
        plan = session.plan()
        assert plan["num_nodes"] == len(PARENTS)
        stats = client.stats()
        assert stats.sessions_open == 1
    # the context manager closed the session
    assert client.stats().sessions_open == 0
    return reply


def test_in_process_flow():
    _exercise(connect(TopKService()))


def test_socket_flow_matches_in_process():
    service = TopKService()
    in_process_reply = _exercise(InProcessClient(service))
    with ServiceThread(TopKService()) as live:
        with SocketClient(live.host, live.port) as client:
            socket_reply = _exercise(client)
    assert socket_reply.nodes == in_process_reply.nodes
    assert socket_reply.values == pytest.approx(in_process_reply.values)


def test_socket_client_reraises_typed_errors():
    with ServiceThread(TopKService()) as live:
        with SocketClient(live.host, live.port) as client:
            with pytest.raises(SessionError, match="unknown session"):
                client.request(msg.GetPlan(session_id="sX"))


def test_two_socket_connections_share_the_service():
    with ServiceThread(TopKService()) as live:
        with SocketClient(live.host, live.port) as first, SocketClient(
            live.host, live.port
        ) as second:
            topology_id = first.register_topology(PARENTS)
            session = second.open_session(topology_id, 2, budget_mj=50.0)
            session.feed(_rows()[0])
            reply = session.query(_rows()[1])
            assert reply.nodes
            assert first.stats().sessions_open == 1


def test_connect_front_door_validation():
    with pytest.raises(ServiceError, match="not both"):
        connect(TopKService(), host="127.0.0.1", port=1)
    with pytest.raises(ServiceError, match="both host and port"):
        connect(host="127.0.0.1")
    client = connect()  # private in-process service
    assert isinstance(client, InProcessClient)


def test_expired_session_over_socket():
    class FakeClock:
        now = 0.0

        def __call__(self):
            return self.now

    clock = FakeClock()
    service = TopKService(
        ServiceConfig(session_ttl_s=5.0), clock=clock
    )
    with ServiceThread(service) as live:
        with SocketClient(live.host, live.port) as client:
            topology_id = client.register_topology(PARENTS)
            session = client.open_session(topology_id, 2, budget_mj=50.0)
            clock.now = 6.0
            with pytest.raises(SessionError, match="expired"):
                session.feed(_rows()[0])
