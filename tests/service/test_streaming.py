"""Pipelined protocol: correlation ids, framing limits, shutdown."""

import socket

import numpy as np
import pytest

from repro.errors import (
    ServiceError,
    ServiceUnavailableError,
    SessionError,
)
from repro.service import messages as msg
from repro.service.client import InProcessClient, SocketClient
from repro.service.server import ServiceConfig, ServiceThread, TopKService

PARENTS = (-1, 0, 0, 1, 1)


def _rows(n=4, nodes=len(PARENTS), seed=11):
    rng = np.random.default_rng(seed)
    return [rng.normal(25, 3, nodes) for __ in range(n)]


# -- envelope correlation ids ----------------------------------------------


def test_envelope_cid_round_trips():
    request = msg.GetStats()
    line = msg.encode(request, cid=7)
    decoded, cid = msg.decode_envelope(line)
    assert decoded == request
    assert cid == 7


def test_envelope_without_cid_decodes_to_none():
    decoded, cid = msg.decode_envelope(msg.encode(msg.GetStats()))
    assert decoded == msg.GetStats()
    assert cid is None


def test_non_integer_cid_is_rejected():
    line = msg.encode(msg.GetStats()).replace("}", ', "cid": "x"}')
    with pytest.raises(ServiceError, match="correlation id"):
        msg.decode_envelope(line)


def test_handle_line_echoes_cid_on_success_and_error():
    service = TopKService()
    ok = service.handle_line(msg.encode(msg.GetStats(), cid=3))
    reply, cid = msg.decode_envelope(ok)
    assert isinstance(reply, msg.StatsReply)
    assert cid == 3
    bad = service.handle_line(
        msg.encode(msg.GetPlan(session_id="sX"), cid=4)
    )
    reply, cid = msg.decode_envelope(bad)
    assert isinstance(reply, msg.ErrorReply)
    assert cid == 4


def test_oversized_frame_rejected_at_decode():
    line = msg.encode(msg.GetStats()) + " " * msg.MAX_FRAME_BYTES
    with pytest.raises(ServiceError, match="protocol limit"):
        msg.decode_envelope(line)


# -- pipelined flow, both transports ---------------------------------------


def _pipelined_exercise(client):
    """Interleave feeds and queries on two sessions; drain once."""
    topology_id = client.register_topology(PARENTS)
    first = client.open_session(topology_id, 2, budget_mj=50.0)
    second = client.open_session(topology_id, 2, budget_mj=50.0)
    rows = _rows()
    for row in rows[:3]:
        first.feed(row)
        second.feed(row)
    # interleaved pipelined burst across both sessions, one bad frame
    first.feed_nowait(rows[3])
    second.query_nowait(rows[0])
    first.query_nowait(rows[1])
    client.submit_nowait(msg.GetPlan(session_id="sX"))  # -> ErrorReply
    second.feed_nowait(rows[3])
    assert client.pending == 5
    replies = client.drain()
    assert client.pending == 0
    first.close()
    second.close()
    return first, second, replies


def _check_pipelined_replies(first, second, replies):
    assert [type(r).__name__ for r in replies] == [
        "SampleAccepted", "QueryReply", "QueryReply",
        "ErrorReply", "SampleAccepted",
    ]
    # replies land in submit order, tagged with their own session
    assert replies[0].session_id == first.session_id
    assert replies[1].session_id == second.session_id
    assert replies[2].session_id == first.session_id
    assert replies[4].session_id == second.session_id
    with pytest.raises(SessionError, match="unknown session"):
        raise msg.error_from_reply(replies[3])


def test_in_process_pipelining():
    client = InProcessClient(TopKService())
    _check_pipelined_replies(*_pipelined_exercise(client))


def test_socket_pipelining_interleaved_cids():
    with ServiceThread(TopKService()) as live:
        with SocketClient(live.host, live.port) as client:
            _check_pipelined_replies(*_pipelined_exercise(client))


def test_socket_and_in_process_streaming_parity():
    """Same burst, same replies, error placement included."""
    in_process = _pipelined_exercise(InProcessClient(TopKService()))
    with ServiceThread(TopKService()) as live:
        with SocketClient(live.host, live.port) as client:
            over_socket = _pipelined_exercise(client)
    for mine, theirs in zip(in_process[2], over_socket[2]):
        assert type(mine) is type(theirs)
        if isinstance(mine, msg.QueryReply):
            assert mine.nodes == theirs.nodes
            assert mine.values == pytest.approx(theirs.values)
        if isinstance(mine, msg.ErrorReply):
            assert mine.error == theirs.error


def test_lockstep_refused_with_pending_pipeline():
    with ServiceThread(TopKService()) as live:
        with SocketClient(live.host, live.port) as client:
            client.submit_nowait(msg.GetStats())
            with pytest.raises(ServiceError, match="drain"):
                client.request(msg.GetStats())
            replies = client.drain()
            assert isinstance(replies[0], msg.StatsReply)


def test_stream_yields_lazily():
    with ServiceThread(TopKService()) as live:
        with SocketClient(live.host, live.port) as client:
            client.submit_nowait(msg.GetStats())
            client.submit_nowait(msg.GetStats())
            stream = client.stream()
            assert isinstance(next(stream), msg.StatsReply)
            assert client.pending == 1
            assert isinstance(next(stream), msg.StatsReply)
            assert client.pending == 0


def test_oversized_frame_over_socket_gets_error_reply():
    with ServiceThread(TopKService()) as live:
        with socket.create_connection(
            (live.host, live.port), timeout=10
        ) as raw:
            raw.sendall(b"x" * (msg.MAX_FRAME_BYTES + 2048) + b"\n")
            raw.settimeout(10)
            blob = b""
            while not blob.endswith(b"\n"):
                chunk = raw.recv(65536)
                if not chunk:
                    break
                blob += chunk
            reply, __ = msg.decode_envelope(blob.decode())
            assert isinstance(reply, msg.ErrorReply)
            assert "protocol limit" in reply.message
            # the connection is closed after the protocol violation
            assert raw.recv(1) == b""


# -- liveness: timeouts, retry, unavailability ------------------------------


def test_connect_refused_is_typed():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()  # nothing listens here now
    with pytest.raises(ServiceUnavailableError, match="cannot connect"):
        SocketClient("127.0.0.1", port, timeout_s=2.0)


def test_read_timeout_is_typed():
    """A server that accepts but never replies trips the read timeout."""
    with socket.socket() as listener:
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        client = SocketClient("127.0.0.1", port, timeout_s=0.3)
        with pytest.raises(ServiceUnavailableError, match="did not reply"):
            client.request(msg.GetStats())


def test_idempotent_request_retries_once_over_fresh_connection():
    with ServiceThread(TopKService()) as live:
        with SocketClient(live.host, live.port) as client:
            assert isinstance(client.request(msg.GetStats()), msg.StatsReply)
            # sever the transport under the client; get_stats recovers
            client._sock.shutdown(socket.SHUT_RDWR)
            assert isinstance(client.request(msg.GetStats()), msg.StatsReply)


def test_mutating_request_is_never_retried():
    with ServiceThread(TopKService()) as live:
        with SocketClient(live.host, live.port) as client:
            topology_id = client.register_topology(PARENTS)
            session = client.open_session(topology_id, 2, budget_mj=50.0)
            client._sock.shutdown(socket.SHUT_RDWR)
            with pytest.raises(ServiceUnavailableError):
                session.feed(_rows()[0])


# -- graceful shutdown ------------------------------------------------------


def test_service_drain_refuses_new_work_finishes_close():
    service = TopKService()
    client = InProcessClient(service)
    topology_id = client.register_topology(PARENTS)
    session = client.open_session(topology_id, 2, budget_mj=50.0)
    for row in _rows()[:3]:
        session.feed(row)
    service.begin_drain()
    with pytest.raises(ServiceUnavailableError, match="draining"):
        session.feed(_rows()[3])
    with pytest.raises(ServiceUnavailableError, match="no new sessions"):
        client.open_session(topology_id, 2, budget_mj=50.0)
    # the wind-down path stays open
    closed = session.close()
    assert closed.session_id == session.session_id


def test_socket_shutdown_answers_inflight_then_closes():
    import time

    service = TopKService()
    with ServiceThread(service, grace_seconds=5.0) as live:
        with SocketClient(live.host, live.port) as client:
            topology_id = client.register_topology(PARENTS)
            session = client.open_session(topology_id, 2, budget_mj=50.0)
            for row in _rows()[:3]:
                session.feed(row)
            # a pipelined burst on the wire when the drain begins
            session.query_nowait(_rows()[0])
            session.query_nowait(_rows()[1])
            client._file.flush()
            server_session = service.session(session.session_id)
            deadline = time.monotonic() + 10.0
            while (
                server_session.requests_handled < 5
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            live.shutdown()
            replies = client.drain()
            assert len(replies) == 2
            assert all(isinstance(r, msg.QueryReply) for r in replies)
    # the thread joined: the listener is gone
    with pytest.raises(ServiceUnavailableError):
        SocketClient(live.host, live.port, timeout_s=2.0)
