"""Protocol round-trips: decode(encode(m)) == m, exactly."""

import json

import pytest

from repro.errors import (
    AdmissionError,
    OverloadError,
    ServiceError,
    SessionError,
)
from repro.service import messages as msg

EXAMPLES = [
    msg.RegisterTopology(parents=(-1, 0, 0, 1, 1)),
    msg.OpenSession(
        topology_id="abc123", k=3, planner="lp-no-lf", budget_mj=75.5,
        window_capacity=10, replan_every=4, track_truth=False,
    ),
    msg.FeedSample(session_id="s0001", readings=(1.0, 2.5, -3.75)),
    msg.SubmitQuery(session_id="s0001", readings=(0.5, 0.25, 0.125)),
    msg.StepEpoch(session_id="s0002", readings=(9.0, 8.0, 7.0)),
    msg.GetPlan(session_id="s0001"),
    msg.CloseSession(session_id="s0001"),
    msg.GetStats(),
    msg.TopologyRegistered(topology_id="abc123", num_nodes=5),
    msg.SessionOpened(
        session_id="s0001", topology_id="abc123", planner="lp-lf"
    ),
    msg.SampleAccepted(session_id="s0001", window_size=4),
    msg.QueryReply(
        session_id="s0001", nodes=(3, 1), values=(9.5, 7.25),
        energy_mj=12.5, accuracy=0.5,
    ),
    msg.QueryReply(session_id="s0001", accuracy=None),
    msg.StepReply(
        session_id="s0001", epoch=7, action="query", energy_mj=3.5,
        nodes=(2,), values=(4.5,), accuracy=1.0,
    ),
    msg.StepReply(session_id="s0001", epoch=8, action="sample"),
    msg.PlanReply(
        session_id="s0001",
        plan={"format_version": 1, "bandwidths": {"1": 2}},
    ),
    msg.SessionClosed(session_id="s0001", epochs=9, total_energy_mj=101.5),
    msg.StatsReply(
        sessions_open=2, sessions_total=5, topologies=1,
        counters={"cache": {"hits": 3}},
    ),
    msg.ErrorReply(error="OverloadError", message="shed"),
]


@pytest.mark.parametrize(
    "message", EXAMPLES, ids=lambda m: type(m).__name__
)
def test_exact_round_trip(message):
    line = msg.encode(message)
    assert "\n" not in line
    rehydrated = msg.decode(line)
    assert rehydrated == message
    assert type(rehydrated) is type(message)
    # stable under a second pass too (no lossy normalization)
    assert msg.encode(rehydrated) == line


def test_encoded_form_is_plain_json_with_kind():
    data = json.loads(msg.encode(msg.GetPlan(session_id="s9")))
    assert data == {"kind": "get_plan", "session_id": "s9"}


def test_sequence_fields_normalize_to_tuples():
    decoded = msg.decode(
        '{"kind": "feed_sample", "session_id": "s1", "readings": [1.0, 2.0]}'
    )
    assert decoded.readings == (1.0, 2.0)
    assert isinstance(decoded.readings, tuple)


def test_decode_rejects_garbage():
    with pytest.raises(ServiceError):
        msg.decode("not json at all {")
    with pytest.raises(ServiceError):
        msg.decode('["a", "list"]')
    with pytest.raises(ServiceError):
        msg.decode('{"kind": "launch_missiles"}')
    with pytest.raises(ServiceError):
        msg.decode('{"kind": "get_plan", "bogus_field": 1}')


def test_kinds_registry_is_total():
    assert set(msg.MESSAGE_KINDS) >= msg.REQUEST_KINDS
    for kind, cls in msg.MESSAGE_KINDS.items():
        assert cls.kind == kind


@pytest.mark.parametrize(
    "error",
    [
        ServiceError("base"),
        SessionError("gone"),
        AdmissionError("full"),
        OverloadError("shed"),
    ],
)
def test_typed_errors_survive_the_wire(error):
    reply = msg.error_to_reply(error)
    line = msg.encode(reply)
    revived = msg.error_from_reply(msg.decode(line))
    assert type(revived) is type(error)
    assert str(revived) == str(error)


def test_unknown_error_name_degrades_to_service_error():
    revived = msg.error_from_reply(
        msg.ErrorReply(error="FutureFancyError", message="hm")
    )
    assert type(revived) is ServiceError
    # and never resolves non-exception attributes of repro.errors
    revived = msg.error_from_reply(
        msg.ErrorReply(error="annotations", message="hm")
    )
    assert type(revived) is ServiceError


def test_nan_accuracy_is_rejected_at_encode_time():
    with pytest.raises(ValueError):
        msg.encode(msg.QueryReply(session_id="s1", accuracy=float("nan")))
