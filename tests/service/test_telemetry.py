"""Live telemetry plane over a sharded deployment (the PR acceptance).

One module-scoped 4-worker fleet (spawning interpreters is expensive)
serves every test here: distributed-trace stitching across processes,
the worker telemetry channel, the HTTP surfaces, and the merged
GetStats histograms.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs import Instrumentation
from repro.obs.distributed import REQUEST_LATENCY_METRIC
from repro.service.server import ServiceConfig
from repro.service.shard import ShardedService

K = 2
BUDGET = 50.0
WORKERS = 4


def _rows(n=4, nodes=10, seed=11):
    rng = np.random.default_rng(seed)
    return [rng.normal(25, 3, nodes) for __ in range(n)]


@pytest.fixture(scope="module")
def fleet():
    with ShardedService(
        WORKERS,
        ServiceConfig(max_sessions=32),
        instrumentation=Instrumentation(),
        telemetry_port=0,
    ) as deployment:
        client = deployment.client()
        rows = _rows()
        rng = np.random.default_rng(5)
        # enough distinct contents that all four shards see sessions
        from repro.network.builder import random_topology

        for seed in range(6):
            topology = random_topology(
                10, rng=np.random.default_rng(seed), radio_range=70.0
            )
            topology_id = client.register_topology(topology)
            session = client.open_session(topology_id, K, budget_mj=BUDGET)
            for row in rows[:3]:
                session.feed(row)
            session.query(rows[3])
            session.close()
        yield deployment, client
        client.close()


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read()


# -- the acceptance criterion ------------------------------------------------


def test_one_query_stitches_into_a_single_cross_process_trace(fleet):
    """A SocketClient query against the 4-worker fleet must yield one
    merged Chrome-trace JSON whose client span, dispatch span, and
    worker plan/compile/solve spans share a single trace id."""
    deployment, client = fleet
    obs = deployment.instrumentation
    query_roots = [
        root for root in obs.spans.roots
        if root.name == "service.shard.request"
        and root.attributes.get("kind") == "submit_query"
    ]
    assert query_roots, "fixture ran queries"
    trace_id = query_roots[0].attributes["trace_id"]

    deployment.poll_telemetry()
    document = json.loads(
        deployment.aggregator.chrome_trace_json(client=obs)
    )
    stitched = [
        event for event in document["traceEvents"]
        if event["ph"] == "X"
        and event.get("args", {}).get("trace_id") == trace_id
    ]
    names = {event["name"] for event in stitched}
    # client lane: the dispatch span and the socket request under it
    assert "service.shard.request" in names
    assert "client.request" in names
    # worker lane: the handled request and its planning subtree
    assert "service.request" in names
    assert {"plan", "compile", "solve"} <= names
    # and the story spans two processes (two pid lanes)
    assert len({event["pid"] for event in stitched}) >= 2


def test_every_shard_reports_telemetry_over_the_pipe(fleet):
    deployment, __ = fleet
    aggregator = deployment.poll_telemetry()
    assert aggregator.shards == ["0", "1", "2", "3"]
    for shard in aggregator.shards:
        snapshot = aggregator.snapshot(shard)
        assert snapshot["shard"] == shard
        assert snapshot["uptime_s"] > 0
        assert snapshot["spans"]["mode"] == "ring"
    rows = aggregator.top_rows()
    assert [row["shard"] for row in rows] == ["0", "1", "2", "3", "fleet"]
    fleet_row = rows[-1]
    assert fleet_row["requests"] >= 6 * 6  # 6 sessions x 6 requests
    assert fleet_row["p99_ms"] is not None and fleet_row["p99_ms"] > 0


def test_prometheus_endpoint_exposes_per_shard_gauges(fleet):
    deployment, __ = fleet
    text = _get(deployment.telemetry.url("/metrics")).decode()
    for shard in range(WORKERS):
        assert f'repro_shard_qps{{shard="{shard}"}}' in text
        assert f'repro_shard_p99_seconds{{shard="{shard}"}}' in text
    assert "# TYPE repro_shard_qps gauge" in text
    assert 'repro_service_request_seconds{quantile="0.99"}' in text


def test_http_trace_and_json_routes_serve_the_fleet(fleet):
    deployment, __ = fleet
    trace = json.loads(_get(deployment.telemetry.url("/trace")))
    lanes = {
        event["args"]["name"] for event in trace["traceEvents"]
        if event["ph"] == "M"
    }
    assert {"shard 0", "shard 1", "shard 2", "shard 3"} <= lanes
    dashboard = json.loads(_get(deployment.telemetry.url("/json")))
    assert dashboard["shards"] == ["0", "1", "2", "3"]
    exemplars = json.loads(_get(deployment.telemetry.url("/exemplars")))
    assert exemplars and all("span" in row for row in exemplars)
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(deployment.telemetry.url("/bogus"))
    assert excinfo.value.code == 404


def test_get_stats_merges_shard_histograms_properly(fleet):
    """S1: fleet quantiles come from merged buckets and exact extrema,
    not from any single shard."""
    __, client = fleet
    stats = client.stats()
    merged = stats.counters["histograms"]
    latency = merged[REQUEST_LATENCY_METRIC]
    assert latency["count"] >= 6 * 6
    assert 0 < latency["min"] <= latency["p50"] <= latency["p99"]
    assert latency["p99"] <= latency["max"]
    assert latency["min"] <= latency["mean"] <= latency["max"]
    # the merged count covers what the shards reported individually
    per_shard_counts = [
        counters["histograms"][REQUEST_LATENCY_METRIC]["count"]
        for counters in stats.counters["per_shard"].values()
        if REQUEST_LATENCY_METRIC in counters.get("histograms", {})
    ]
    assert latency["count"] == sum(per_shard_counts)


def test_get_stats_reports_wire_and_blob_counters_per_shard(fleet):
    """S6: every shard's stats carry wire-protocol byte totals and
    blob-spool outcome counters."""
    __, client = fleet
    stats = client.stats()
    per_shard = stats.counters["per_shard"]
    assert set(per_shard) == {"0", "1", "2", "3"}
    for counters in per_shard.values():
        wire_stats = counters["wire"]
        assert {"requests", "request_bytes", "reply_bytes"} <= set(
            wire_stats
        )
        assert "blobs" in counters
    total_requests = sum(
        counters["wire"]["requests"]["v1"]
        + counters["wire"]["requests"]["v2"]
        for counters in per_shard.values()
    )
    assert total_requests >= 6 * 6
    total_bytes = sum(
        counters["wire"]["request_bytes"]["v2"]
        for counters in per_shard.values()
    )
    assert total_bytes > 0


def test_top_cli_renders_the_live_fleet(fleet, capsys):
    from repro.cli import main

    deployment, __ = fleet
    assert main(
        ["top", "--url", deployment.telemetry.url(""), "--once"]
    ) == 0
    out = capsys.readouterr().out
    lines = out.strip().splitlines()
    assert "qps" in lines[0] and "p99(ms)" in lines[0]
    assert lines[-1].strip().startswith("fleet")
    assert sum(1 for line in lines if line.strip()[0].isdigit()) == WORKERS
