"""Sharded service: routing, parity with single-process, lifecycle.

Worker processes are expensive to spawn (a fresh interpreter imports
numpy/scipy), so every live test shares one module-scoped two-worker
deployment; pure routing logic is tested without any processes.
"""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.network.builder import random_topology
from repro.service import messages as msg
from repro.service.client import InProcessClient
from repro.service.server import ServiceConfig, TopKService
from repro.service.shard import (
    ShardedClient,
    ShardedService,
    rendezvous_worker,
)

K = 2
BUDGET = 50.0


def _topologies(count=3, nodes=10, seed=5):
    rng = np.random.default_rng(seed)
    return [
        random_topology(nodes, rng=rng, radio_range=70.0)
        for __ in range(count)
    ]


def _rows(n=4, nodes=10, seed=11):
    rng = np.random.default_rng(seed)
    return [rng.normal(25, 3, nodes) for __ in range(n)]


# -- routing (no processes) -------------------------------------------------


def test_rendezvous_is_deterministic_and_spread():
    keys = [f"top{i}|lp-lf|3" for i in range(64)]
    owners = [rendezvous_worker(k, 4) for k in keys]
    assert owners == [rendezvous_worker(k, 4) for k in keys]
    assert set(owners) == {0, 1, 2, 3}  # 64 keys cover 4 workers


def test_rendezvous_is_consistent_when_scaling_up():
    """Adding a worker only moves keys that the new worker wins."""
    keys = [f"top{i}|lp-lf|3" for i in range(128)]
    before = [rendezvous_worker(k, 3) for k in keys]
    after = [rendezvous_worker(k, 4) for k in keys]
    for old, new in zip(before, after):
        assert new == old or new == 3


def test_rendezvous_rejects_zero_workers():
    with pytest.raises(ServiceError, match="at least one"):
        rendezvous_worker("key", 0)


def test_malformed_session_ids_are_rejected():
    client = ShardedClient([("h", 1), ("h", 2)])  # lazy: never connects
    for bad in ("s0001", "w9/s0001", "wx/s0001", "w/s0001", "w1-s0001"):
        with pytest.raises(ServiceError, match="malformed sharded"):
            client.request(msg.FeedSample(session_id=bad, readings=(1.0,)))


def test_broadcast_kinds_cannot_be_pipelined():
    client = ShardedClient([("h", 1), ("h", 2)])
    with pytest.raises(ServiceError, match="broadcast"):
        client.submit_nowait(msg.GetStats())


def test_session_id_namespacing_round_trips():
    client = ShardedClient([("h", 1), ("h", 2)])
    assert client._split_session_id("w1/s0042") == (1, "s0042")
    assert client._join_session_id(1, "s0042") == "w1/s0042"


def test_sharded_service_validates_workers():
    with pytest.raises(ServiceError, match=">= 1"):
        ShardedService(0)


# -- live deployment --------------------------------------------------------


@pytest.fixture(scope="module")
def sharded():
    with ShardedService(2, ServiceConfig(max_sessions=32)) as deployment:
        yield deployment


def test_sessions_route_by_content_and_work(sharded):
    client = sharded.client()
    rows = _rows()
    try:
        for topology in _topologies():
            topology_id = client.register_topology(topology)
            expected = sharded.worker_for(topology_id, "lp-lf", K)
            session = client.open_session(topology_id, K, budget_mj=BUDGET)
            shard, __ = client._split_session_id(session.session_id)
            assert shard == expected
            for row in rows[:3]:
                session.feed(row)
            reply = session.query(rows[3])
            assert len(reply.nodes) == K
            assert reply.session_id == session.session_id
            session.close()
    finally:
        client.close()


def test_sharded_results_match_single_process(sharded):
    """Byte-identical parity: same feeds, same queries, same replies."""
    topologies = _topologies(count=4, seed=17)
    rows = _rows(n=5, seed=23)

    def run(client):
        outcomes = []
        for topology in topologies:
            topology_id = client.register_topology(topology)
            session = client.open_session(topology_id, K, budget_mj=BUDGET)
            for row in rows[:3]:
                session.feed(row)
            replies = [session.query(row) for row in rows[3:]]
            plan = session.plan()
            outcomes.append(
                (
                    [
                        (r.nodes, r.values, r.energy_mj, r.accuracy)
                        for r in replies
                    ],
                    plan,
                )
            )
            session.close()
        return outcomes

    single = run(InProcessClient(TopKService(ServiceConfig(max_sessions=32))))
    client = sharded.client()
    try:
        shard_side = run(client)
    finally:
        client.close()
    assert shard_side == single


def test_stats_aggregate_across_workers(sharded):
    client = sharded.client()
    try:
        topology_id = client.register_topology(_topologies(count=1)[0])
        session = client.open_session(topology_id, K, budget_mj=BUDGET)
        stats = client.stats()
        assert stats.counters["workers"] == 2
        assert set(stats.counters["per_shard"]) == {"0", "1"}
        assert stats.sessions_open >= 1
        # registration broadcasts: every worker knows the topology
        assert stats.topologies >= 1
        for counters in stats.counters["per_shard"].values():
            assert "cache" in counters
        session.close()
    finally:
        client.close()


def test_pipelined_burst_across_shards_preserves_order(sharded):
    client = sharded.client()
    rows = _rows()
    try:
        handles = []
        for topology in _topologies(count=3, seed=29):
            topology_id = client.register_topology(topology)
            handle = client.open_session(topology_id, K, budget_mj=BUDGET)
            for row in rows[:3]:
                handle.feed(row)
            handles.append(handle)
        expected = []
        for handle in handles:
            handle.feed_nowait(rows[3])
            expected.append(("sample_accepted", handle.session_id))
            handle.query_nowait(rows[0])
            expected.append(("query_reply", handle.session_id))
        assert client.pending == 6
        replies = client.drain()
        assert [(r.kind, r.session_id) for r in replies] == expected
        for handle in handles:
            handle.close()
    finally:
        client.close()


def test_artifact_store_is_shared_across_workers(sharded):
    """Both workers spill into (and load from) one artifact directory."""
    client = sharded.client()
    try:
        topology_id = client.register_topology(_topologies(count=1, seed=31)[0])
        session = client.open_session(topology_id, K, budget_mj=BUDGET)
        for row in _rows(seed=31)[:3]:
            session.feed(row)
        session.query(_rows(seed=31)[3])
        session.close()
        stats = client.stats()
        artifact_counts = [
            counters["cache"].get("artifacts", {})
            for counters in stats.counters["per_shard"].values()
        ]
        assert sum(a.get("saves", 0) for a in artifact_counts) >= 1
    finally:
        client.close()


def test_shutdown_is_idempotent_and_reaps_workers():
    deployment = ShardedService(1, ServiceConfig())
    deployment.start()
    processes = list(deployment._processes)
    assert all(p.is_alive() for p in processes)
    deployment.shutdown()
    assert not deployment.endpoints
    assert all(not p.is_alive() for p in processes)
    deployment.shutdown()  # no-op
