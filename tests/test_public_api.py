"""Public API surface tests."""

import doctest

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__.count(".") == 2


def test_package_docstring_example():
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0


def test_subpackage_imports():
    import repro.cli
    import repro.datagen
    import repro.experiments
    import repro.lp
    import repro.network
    import repro.planners
    import repro.plans
    import repro.queries
    import repro.query
    import repro.sampling
    import repro.simulation
    import repro.stochastic

    for module in (
        repro.lp,
        repro.network,
        repro.plans,
        repro.planners,
        repro.sampling,
        repro.simulation,
        repro.datagen,
        repro.queries,
        repro.query,
        repro.stochastic,
        repro.experiments,
        repro.cli,
    ):
        assert module.__doc__
