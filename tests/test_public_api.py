"""Public API surface tests."""

import doctest

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__.count(".") == 2


def test_package_docstring_example():
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0


def test_subpackage_imports():
    import repro.api
    import repro.cli
    import repro.datagen
    import repro.experiments
    import repro.lp
    import repro.network
    import repro.planners
    import repro.plans
    import repro.queries
    import repro.query
    import repro.sampling
    import repro.service
    import repro.simulation
    import repro.stochastic

    for module in (
        repro.lp,
        repro.network,
        repro.plans,
        repro.planners,
        repro.sampling,
        repro.simulation,
        repro.datagen,
        repro.queries,
        repro.query,
        repro.service,
        repro.api,
        repro.stochastic,
        repro.experiments,
        repro.cli,
    ):
        assert module.__doc__


def test_api_facade_docstring_example():
    import repro.api

    results = doctest.testmod(repro.api, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
