"""Tests for per-node burdens and lifetime estimation."""

import numpy as np
import pytest

from repro.analysis.lifetime import (
    compare_lifetimes,
    estimate_lifetime,
    node_burdens,
)
from repro.errors import PlanError
from repro.network.builder import line_topology, star_topology
from repro.network.energy import EnergyModel
from repro.plans.plan import QueryPlan

ENERGY = EnergyModel(
    sending_mw=60.0, receiving_mw=30.0, byte_rate=3000.0,
    per_message_mj=1.0, value_bytes=4,
)


class TestNodeBurdens:
    def test_split_matches_power_ratio(self):
        topo = line_topology(2)
        plan = QueryPlan.full(topo)
        rows = [[1.0, 2.0]]
        burdens = node_burdens(plan, ENERGY, rows)
        message = ENERGY.message_cost(1)
        assert burdens[1].transmit_mj == pytest.approx(message * 2 / 3)
        assert burdens[0].receive_mj == pytest.approx(message * 1 / 3)
        assert burdens[1].receive_mj == 0.0
        assert burdens[0].transmit_mj == 0.0

    def test_totals_conserve_message_energy(self, medium_random, rng):
        plan = QueryPlan.naive_k(medium_random, 4)
        rows = rng.normal(size=(5, medium_random.n))
        burdens = node_burdens(plan, ENERGY, rows)
        from repro.plans.execution import execute_plan

        expected = np.mean(
            [
                sum(m.cost(ENERGY) for m in execute_plan(plan, row).messages)
                for row in rows
            ]
        )
        total = sum(b.total_mj for b in burdens.values())
        assert total == pytest.approx(expected)

    def test_relays_bear_more_than_leaves(self, rng):
        chain = line_topology(5)
        plan = QueryPlan.full(chain)
        rows = rng.normal(size=(4, 5))
        burdens = node_burdens(plan, ENERGY, rows)
        # node 1 relays the whole chain; node 4 only sends its own value
        assert burdens[1].total_mj > burdens[4].total_mj

    def test_acquisition_charged_to_visited(self, rng):
        import dataclasses

        charged = dataclasses.replace(ENERGY, acquisition_mj=0.25)
        topo = star_topology(4)
        plan = QueryPlan.from_chosen_nodes(topo, {1})
        burdens = node_burdens(plan, charged, rng.normal(size=(3, 4)))
        assert burdens[1].acquisition_mj == 0.25
        assert burdens[2].acquisition_mj == 0.0

    def test_requires_samples(self, small_tree):
        with pytest.raises(PlanError):
            node_burdens(QueryPlan.full(small_tree), ENERGY, [])


class TestEstimateLifetime:
    def test_bottleneck_is_root_relay(self, rng):
        chain = line_topology(5)
        plan = QueryPlan.full(chain)
        rows = rng.normal(size=(4, 5))
        report = estimate_lifetime(plan, ENERGY, rows, battery_mj=1000.0)
        assert report.bottleneck_node == 1
        assert report.lifetime_rounds == pytest.approx(
            1000.0 / report.burdens[1].total_mj
        )

    def test_root_excluded_by_default(self, rng):
        star = star_topology(4)
        plan = QueryPlan.full(star)
        rows = rng.normal(size=(3, 4))
        report = estimate_lifetime(plan, ENERGY, rows, battery_mj=100.0)
        assert report.bottleneck_node != 0
        mains_free = estimate_lifetime(
            plan, ENERGY, rows, battery_mj=100.0, exclude_root=False
        )
        # the root receives everything: including it shortens lifetime
        assert mains_free.lifetime_rounds <= report.lifetime_rounds

    def test_empty_plan_lives_forever(self, small_tree, rng):
        plan = QueryPlan(small_tree, {})
        report = estimate_lifetime(
            plan, ENERGY, rng.normal(size=(2, 7)), battery_mj=10.0
        )
        assert report.lifetime_rounds == float("inf")

    def test_battery_validation(self, small_tree, rng):
        with pytest.raises(PlanError):
            estimate_lifetime(
                QueryPlan.full(small_tree), ENERGY,
                rng.normal(size=(2, 7)), battery_mj=0.0,
            )

    def test_hottest_and_rows(self, rng):
        chain = line_topology(4)
        plan = QueryPlan.full(chain)
        report = estimate_lifetime(
            plan, ENERGY, rng.normal(size=(3, 4)), battery_mj=50.0
        )
        hottest = report.hottest(2)
        assert len(hottest) == 2
        assert hottest[0].total_mj >= hottest[1].total_mj
        assert len(report.rows()) == chain.n


class TestCompareLifetimes:
    def test_cheaper_plan_lives_longer(self, medium_random, rng):
        rows = rng.normal(size=(5, medium_random.n))
        plans = {
            "naive-k": QueryPlan.naive_k(medium_random, 5),
            "narrow": QueryPlan.naive_k(medium_random, 1),
        }
        leaderboard = compare_lifetimes(plans, ENERGY, rows, battery_mj=5000.0)
        assert leaderboard[0]["plan"] == "narrow"
        assert (
            leaderboard[0]["lifetime_rounds"]
            >= leaderboard[1]["lifetime_rounds"]
        )
