"""Tests for plan introspection."""

import numpy as np
import pytest

from repro.analysis import compare_plans, explain_plan
from repro.network.energy import EnergyModel
from repro.plans.plan import QueryPlan
from repro.sampling.matrix import SampleMatrix

UNIFORM = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.5)


@pytest.fixture
def samples(small_tree, rng):
    return SampleMatrix(rng.normal(10, 3, size=(12, small_tree.n)), 2)


class TestExplainPlan:
    def test_cost_breakdown_sums_to_static(self, small_tree, samples):
        plan = QueryPlan.naive_k(small_tree, 2)
        report = explain_plan(plan, samples, UNIFORM)
        assert report.total_cost_mj == pytest.approx(
            plan.static_cost(UNIFORM)
        )
        assert report.message_cost_mj == pytest.approx(
            len(plan.used_edges) * 1.0
        )
        assert report.acquisition_cost_mj == 0.0

    def test_acquisition_included_when_charged(self, small_tree, samples):
        import dataclasses

        charged = dataclasses.replace(UNIFORM, acquisition_mj=0.5)
        plan = QueryPlan.naive_k(small_tree, 2)
        report = explain_plan(plan, samples, charged)
        assert report.acquisition_cost_mj == pytest.approx(0.5 * 7)

    def test_full_plan_perfect_accuracy(self, small_tree, samples):
        report = explain_plan(QueryPlan.full(small_tree), samples, UNIFORM)
        assert report.expected_accuracy == pytest.approx(1.0)
        assert report.visited_nodes == 7

    def test_edge_usage_and_saturation(self, small_tree):
        # nodes 3 and 4 always hold the top-2: edge 1 (bandwidth 1)
        # saturates every sample, edge 2 never transmits anything useful
        rows = np.zeros((6, 7))
        rows[:, 3] = 50.0
        rows[:, 4] = 60.0
        samples = SampleMatrix(rows, 2)
        plan = QueryPlan(small_tree, {1: 1, 3: 1, 4: 1})
        report = explain_plan(plan, samples, UNIFORM)
        by_edge = {u.edge: u for u in report.edges}
        assert by_edge[1].saturation == 1.0
        assert by_edge[1].mean_transmitted == 1.0
        assert report.bottlenecks() != []
        assert report.expected_hits == pytest.approx(1.0)  # capped by edge 1

    def test_rows_align_with_edges(self, small_tree, samples):
        plan = QueryPlan.naive_k(small_tree, 2)
        report = explain_plan(plan, samples, UNIFORM)
        rows = report.rows()
        assert len(rows) == len(report.edges)
        assert {r["edge"] for r in rows} == {u.edge for u in report.edges}

    def test_cut_off_edges_excluded(self, small_tree, samples):
        plan = QueryPlan(small_tree, {6: 3})  # unreachable subtree
        report = explain_plan(plan, samples, UNIFORM)
        assert report.num_edges_used == 0
        assert report.total_cost_mj == 0.0


class TestComparePlans:
    def test_wider_plan_wins_hits(self, small_tree, samples):
        narrow = QueryPlan(small_tree, {1: 1, 3: 1, 4: 1})
        wide = QueryPlan.naive_k(small_tree, 2)
        comparison = compare_plans(narrow, wide, samples, UNIFORM)
        assert comparison.hits_delta > 0
        assert comparison.install_cost_mj > 0
        assert comparison.worth_installing(improvement_threshold=0.01)

    def test_identical_plans_not_worth_installing(self, small_tree, samples):
        plan = QueryPlan.naive_k(small_tree, 2)
        comparison = compare_plans(plan, plan, samples, UNIFORM)
        assert comparison.hits_delta == 0.0
        assert not comparison.worth_installing()

    def test_breakeven_for_cheaper_candidate(self, small_tree, samples):
        expensive = QueryPlan.full(small_tree)
        cheaper = QueryPlan.naive_k(small_tree, 2)
        comparison = compare_plans(expensive, cheaper, samples, UNIFORM)
        assert comparison.cost_delta_mj < 0
        assert np.isfinite(comparison.breakeven_queries)
        costlier = compare_plans(cheaper, expensive, samples, UNIFORM)
        assert costlier.breakeven_queries == float("inf")
