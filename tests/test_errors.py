"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BudgetError,
    ModelError,
    PlanError,
    ReproError,
    SamplingError,
    SolverError,
    TopologyError,
    TraceError,
)

ALL_ERRORS = [
    BudgetError,
    ModelError,
    PlanError,
    SamplingError,
    SolverError,
    TopologyError,
    TraceError,
]


def test_all_derive_from_repro_error():
    for error in ALL_ERRORS:
        assert issubclass(error, ReproError)
        assert issubclass(error, Exception)


def test_catching_the_base_catches_everything():
    for error in ALL_ERRORS:
        with pytest.raises(ReproError):
            raise error("boom")


def test_solver_error_carries_status():
    err = SolverError("infeasible model", status="infeasible")
    assert err.status == "infeasible"
    assert "infeasible model" in str(err)
    assert SolverError("x").status == "error"  # default
