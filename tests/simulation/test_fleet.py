"""FleetSimulator vs per-cell BatchSimulator: the equivalence suite.

The fleet engine groups cells, concatenates traces, and shards across
processes — none of which may change a single number.  Every report
must be element-wise identical to a dedicated ``BatchSimulator`` run
with the matching ``SeedSequence`` child, the pooled path must equal
the serial path byte-for-byte, and the mmap trace store must round-trip
exactly while pickling by path (fork-safety regression, ISSUE 7).
"""

import pickle

import numpy as np
import pytest

from repro.errors import TraceError
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.obs import Instrumentation
from repro.plans.plan import QueryPlan
from repro.simulation.batch import BatchSimulator
from repro.simulation.fleet import (
    FleetCell,
    FleetSimulator,
    TraceStore,
    load_traces,
    save_traces,
)

MICA2 = EnergyModel.mica2()


def _random_plan(topology, rng, size):
    chosen = set(rng.choice(topology.n, size=size, replace=False).tolist())
    return QueryPlan.from_chosen_nodes(topology, chosen)


def _grid(seed=3, topologies=2, plans=3, traces=2, n=30, epochs=7,
          with_failures=True):
    """A small topology × plan × trace grid with mixed failure regimes."""
    rng = np.random.default_rng(seed)
    cells = []
    for t in range(topologies):
        topology = random_topology(n, rng=rng)
        failure_models = [None]
        if with_failures:
            failure_models.append(
                LinkFailureModel.random(
                    topology, np.random.default_rng(100 + t),
                    max_probability=0.4,
                )
            )
        for p in range(plans):
            plan = _random_plan(topology, rng, size=6 + 3 * p)
            for e in range(traces):
                trace = rng.normal(size=(epochs, n))
                failures = failure_models[
                    (t + p + e) % len(failure_models)
                ]
                cells.append(FleetCell(topology, plan, trace, failures))
    return cells


def _reference_reports(cells, seed):
    """Per-cell BatchSimulator runs with the matching spawn children."""
    seeds = np.random.SeedSequence(seed).spawn(len(cells))
    reports = []
    for cell, child in zip(cells, seeds):
        simulator = BatchSimulator(
            cell.topology, MICA2, failures=cell.failures,
            rng=np.random.default_rng(child),
        )
        reports.append(
            simulator.run_collection(cell.plan, np.asarray(cell.trace))
        )
    return reports


def _assert_reports_equal(fleet, reference, exact=False):
    assert len(fleet) == len(reference)
    for got, want in zip(fleet, reference):
        np.testing.assert_array_equal(got.returned_nodes, want.returned_nodes)
        np.testing.assert_array_equal(
            got.returned_values, want.returned_values
        )
        assert got.num_messages == want.num_messages
        assert got.num_values_sent == want.num_values_sent
        np.testing.assert_array_equal(got.num_retries, want.num_retries)
        np.testing.assert_array_equal(got.failure_edges, want.failure_edges)
        np.testing.assert_array_equal(
            got.failure_matrix, want.failure_matrix
        )
        if exact:
            np.testing.assert_array_equal(got.energy_mj, want.energy_mj)
        else:
            np.testing.assert_allclose(
                got.energy_mj, want.energy_mj, rtol=1e-9
            )


class TestFleetEquivalence:
    def test_grid_matches_per_cell_batch_runs(self):
        cells = _grid()
        fleet = FleetSimulator(MICA2).run(cells, seed=17)
        _assert_reports_equal(fleet, _reference_reports(cells, 17))

    def test_failure_regimes_actually_bite(self):
        cells = [c for c in _grid() if c.failures is not None]
        fleet = FleetSimulator(MICA2).run(cells, seed=5)
        assert any(int(r.num_retries.sum()) > 0 for r in fleet)
        _assert_reports_equal(fleet, _reference_reports(cells, 5))

    def test_blocking_is_invisible(self):
        cells = _grid(with_failures=False)
        wide = FleetSimulator(MICA2, block_epochs=65536).run(cells, seed=1)
        narrow = FleetSimulator(MICA2, block_epochs=1).run(cells, seed=1)
        _assert_reports_equal(wide, narrow, exact=True)

    def test_records_fleet_counters(self):
        obs = Instrumentation()
        cells = _grid(topologies=1, plans=2, traces=2, with_failures=False)
        FleetSimulator(MICA2, instrumentation=obs).run(cells, seed=0)
        assert obs.counter("fleet.runs").value == 1
        assert obs.counter("fleet.cells").value == len(cells)
        assert obs.counter("fleet.groups").value == 2
        assert obs.counter("fleet.shards").value == 1
        events = obs.trace.events("fleet_run")
        assert len(events) == 1
        assert events[0].data["cells"] == len(cells)

    def test_rejects_invalid_block_epochs(self):
        with pytest.raises(ValueError):
            FleetSimulator(MICA2, block_epochs=0)

    def test_seed_mismatch_rejected(self):
        cells = _grid(topologies=1, plans=1, traces=1)
        with pytest.raises(ValueError):
            FleetSimulator(MICA2).run_cells_seeded(
                cells, np.random.SeedSequence(0).spawn(len(cells) + 1)
            )


class TestTraceStore:
    def _store(self, tmp_path, arrays):
        return load_traces(save_traces(tmp_path / "traces", arrays))

    def test_round_trip_is_memory_mapped(self, tmp_path):
        rng = np.random.default_rng(0)
        arrays = {
            "a": rng.normal(size=(5, 12)),
            "b": rng.normal(size=(9, 3)),
        }
        store = self._store(tmp_path, arrays)
        assert len(store) == 2
        assert set(store.keys()) == {"a", "b"}
        assert "a" in store and "zzz" not in store
        for name, want in arrays.items():
            got = store[name]
            assert isinstance(got, np.memmap)
            np.testing.assert_array_equal(np.asarray(got), want)

    def test_missing_key_raises_trace_error(self, tmp_path):
        store = self._store(tmp_path, {"only": np.zeros((2, 2))})
        with pytest.raises(TraceError):
            store["missing"]

    def test_pickles_by_path_not_by_bytes(self, tmp_path):
        arrays = {"t": np.arange(24.0).reshape(4, 6)}
        store = self._store(tmp_path, arrays)
        payload = pickle.dumps(store)
        # the fork-safety contract: workers receive a path, not arrays
        assert len(payload) < 512
        reopened = pickle.loads(payload)
        assert reopened.path == store.path
        np.testing.assert_array_equal(np.asarray(reopened["t"]), arrays["t"])

    def test_cell_with_store_key_but_no_store_raises(self):
        cells = _grid(topologies=1, plans=1, traces=1)
        named = [
            FleetCell(cells[0].topology, cells[0].plan, "missing-trace")
        ]
        with pytest.raises(TraceError):
            FleetSimulator(MICA2).run(named, seed=0)


class TestPooledExecution:
    def test_pooled_equals_serial_byte_for_byte(self, tmp_path):
        """Satellite 6 regression: the fork-safe pooled path (workers
        reopening the mmap store by path) must reproduce the serial
        run exactly, including energies."""
        base = _grid(topologies=2, plans=2, traces=2, epochs=5)
        names = [f"trace-{i}" for i in range(len(base))]
        path = save_traces(
            tmp_path / "fleet", dict(zip(names, (c.trace for c in base)))
        )
        store = load_traces(path)
        cells = [
            FleetCell(c.topology, c.plan, name, c.failures)
            for c, name in zip(base, names)
        ]
        serial = FleetSimulator(MICA2, trace_store=store).run(cells, seed=9)
        pooled = FleetSimulator(
            MICA2, trace_store=store, processes=3
        ).run(cells, seed=9)
        _assert_reports_equal(pooled, serial, exact=True)

    def test_pooled_counts_shards(self, tmp_path):
        obs = Instrumentation()
        cells = _grid(topologies=1, plans=2, traces=2, with_failures=False)
        FleetSimulator(
            MICA2, processes=2, instrumentation=obs
        ).run(cells, seed=0)
        assert obs.counter("fleet.shards").value == 2


class TestRunnerIntegration:
    def test_run_fleet_caches_and_reruns_with_original_seeds(self):
        from repro.experiments.runner import ExperimentRunner

        cells = _grid(topologies=1, plans=2, traces=2)
        obs = Instrumentation()
        runner = ExperimentRunner(seed=4, instrumentation=obs)
        simulator = FleetSimulator(MICA2)
        first = runner.run_fleet(simulator, cells, seed=4)
        assert obs.counter("runner.trials").value == len(cells)
        second = runner.run_fleet(simulator, cells, seed=4)
        assert obs.counter("runner.cache.hits").value == len(cells)
        _assert_reports_equal(second, first, exact=True)
        # a partial re-run (two cached cells dropped) must still hand
        # the missed cells their original spawn children
        runner.clear_cache()
        runner.run_fleet(simulator, cells[:2], seed=4)
        mixed = runner.run_fleet(simulator, cells, seed=4)
        _assert_reports_equal(mixed, first, exact=True)
