"""BatchSimulator vs the scalar Simulator: the equivalence suite.

The batch engine must be bit-compatible with the reference oracle:
identical node sets, energies within 1e-9 relative tolerance, and —
under the shared-draw seed discipline — exactly the same failure
retries, epoch by epoch and edge by edge.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.obs import EnergyLedger, Instrumentation
from repro.plans.plan import QueryPlan
from repro.query.accuracy import accuracy
from repro.simulation.batch import BatchSimulator
from repro.simulation.runtime import Simulator
from tests.conftest import tree_plan_readings

MICA2 = EnergyModel.mica2()


@pytest.fixture
def workload():
    rng = np.random.default_rng(11)
    topology = random_topology(30, rng=rng)
    plan = QueryPlan.from_chosen_nodes(
        topology, set(rng.choice(topology.n, size=12, replace=False).tolist())
    )
    trace = rng.normal(size=(9, topology.n))
    return topology, plan, trace


def _scalar_reports(topology, plan, trace, failures=None, seed=None):
    simulator = Simulator(
        topology, MICA2, failures=failures,
        rng=np.random.default_rng(seed),
    )
    return [simulator.run_collection(plan, readings) for readings in trace]


def test_collection_equivalence(workload):
    topology, plan, trace = workload
    scalar = _scalar_reports(topology, plan, trace)
    batch = BatchSimulator(topology, MICA2).run_collection(plan, trace)
    assert batch.num_epochs == len(trace)
    assert batch.num_messages == scalar[0].num_messages
    assert batch.num_values_sent == scalar[0].num_values_sent
    np.testing.assert_allclose(
        batch.energy_mj, [r.energy_mj for r in scalar], rtol=1e-9
    )
    for epoch, report in enumerate(scalar):
        assert batch.top_k_node_sets(5)[epoch] == report.top_k_nodes(5)
        assert [
            (float(v), int(u))
            for v, u in zip(
                batch.returned_values[epoch], batch.returned_nodes[epoch]
            )
        ] == report.returned


def test_failure_equivalence_under_shared_seed(workload):
    topology, plan, trace = workload
    failures = LinkFailureModel.random(
        topology, np.random.default_rng(5), max_probability=0.4
    )
    scalar = _scalar_reports(topology, plan, trace, failures, seed=7)
    batch = BatchSimulator(
        topology, MICA2, failures=failures, rng=np.random.default_rng(7)
    ).run_collection(plan, trace)
    assert int(batch.num_retries.sum()) > 0  # the draw actually bites
    np.testing.assert_allclose(
        batch.energy_mj, [r.energy_mj for r in scalar], rtol=1e-9
    )
    np.testing.assert_array_equal(
        batch.num_retries, [r.num_retries for r in scalar]
    )
    for epoch, report in enumerate(scalar):
        assert batch.edge_outcomes(epoch) == report.edge_outcomes


def test_edge_outcome_aggregates_match_scalar(workload):
    topology, plan, trace = workload
    failures = LinkFailureModel.uniform(
        topology, probability=0.3, reroute_extra_mj=2.0
    )
    scalar = _scalar_reports(topology, plan, trace, failures, seed=3)
    batch = BatchSimulator(
        topology, MICA2, failures=failures, rng=np.random.default_rng(3)
    ).run_collection(plan, trace)
    expected: dict[int, tuple[int, int]] = {}
    for report in scalar:
        for edge, failed in report.edge_outcomes:
            attempts, fails = expected.get(edge, (0, 0))
            expected[edge] = (attempts + 1, fails + int(failed))
    assert batch.edge_outcome_counts() == expected


@settings(max_examples=60, deadline=None)
@given(
    tree_plan_readings(),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=2**31),
    st.floats(min_value=0.0, max_value=0.9),
)
def test_retry_property(data, epochs, seed, probability):
    """Satellite property: retry counts and edge-outcome aggregates are
    identical to the scalar oracle for arbitrary plans, traces, seeds
    and failure rates."""
    topology, bandwidths, readings = data
    plan = QueryPlan(topology, bandwidths)
    trace = np.tile(np.asarray(readings, dtype=np.float64), (epochs, 1))
    failures = LinkFailureModel.uniform(
        topology, probability=probability, reroute_extra_mj=1.5
    )
    scalar = _scalar_reports(topology, plan, trace, failures, seed=seed)
    batch = BatchSimulator(
        topology, MICA2, failures=failures, rng=np.random.default_rng(seed)
    ).run_collection(plan, trace)
    np.testing.assert_array_equal(
        batch.num_retries, [r.num_retries for r in scalar]
    )
    np.testing.assert_allclose(
        batch.energy_mj, [r.energy_mj for r in scalar], rtol=1e-9
    )
    expected: dict[int, tuple[int, int]] = {}
    for report in scalar:
        for edge, failed in report.edge_outcomes:
            attempts, fails = expected.get(edge, (0, 0))
            expected[edge] = (attempts + 1, fails + int(failed))
    assert batch.edge_outcome_counts() == expected


def test_naive_k_equivalence(workload):
    topology, __, trace = workload
    simulator = Simulator(topology, MICA2)
    batch = BatchSimulator(topology, MICA2).run_naive_k(trace, k=4)
    for epoch, readings in enumerate(trace):
        report = simulator.run_naive_k(readings, 4)
        assert batch.top_k_node_sets(4)[epoch] == report.top_k_nodes(4)
        assert batch.energy_mj[epoch] == pytest.approx(
            report.energy_mj, rel=1e-9
        )


def test_plan_sweep_matches_per_plan_collections(workload):
    topology, __, trace = workload
    rng = np.random.default_rng(2)
    plans = [
        QueryPlan.from_chosen_nodes(
            topology,
            set(rng.choice(topology.n, size=size, replace=False).tolist()),
        )
        for size in (3, 8, 15, 29)
    ]
    simulator = BatchSimulator(topology, MICA2)
    energies = simulator.run_plan_sweep(plans)
    for plan, swept in zip(plans, energies):
        report = simulator.run_collection(plan, trace[:1])
        assert swept == pytest.approx(report.energy_mj[0], rel=1e-9)
    assert simulator.run_plan_sweep([]).shape == (0,)


def test_plan_sweep_rejects_failure_model(workload):
    topology, plan, __ = workload
    failures = LinkFailureModel.uniform(topology, 0.1, 1.0)
    simulator = BatchSimulator(topology, MICA2, failures=failures)
    with pytest.raises(PlanError, match="failure"):
        simulator.run_plan_sweep([plan])


def test_accuracies_match_scalar_metric(workload):
    topology, plan, trace = workload
    simulator = BatchSimulator(topology, MICA2)
    report = simulator.run_collection(plan, trace)
    batched = simulator.accuracies(report, trace, k=5)
    for epoch, readings in enumerate(trace):
        expected = accuracy(report.top_k_node_sets(5)[epoch], readings, 5)
        assert batched[epoch] == pytest.approx(expected)


def test_accepts_trace_objects(workload):
    topology, plan, trace = workload

    class TraceLike:
        values = trace

    batch = BatchSimulator(topology, MICA2).run_collection(plan, TraceLike())
    assert batch.num_epochs == len(trace)


class TestLedgerEquivalence:
    """The per-node EnergyLedger must agree between the scalar and the
    batch charge paths to 1e-9 relative tolerance (ISSUE acceptance)."""

    def _ledgers(self, workload, failures=None, seed=None, capacity=None):
        topology, plan, trace = workload
        scalar_ledger = EnergyLedger(topology.n, capacity_mj=capacity)
        scalar = Simulator(
            topology, MICA2, failures=failures,
            rng=np.random.default_rng(seed), ledger=scalar_ledger,
        )
        for readings in trace:
            scalar.run_collection(plan, readings)
        batch_ledger = EnergyLedger(topology.n, capacity_mj=capacity)
        BatchSimulator(
            topology, MICA2, failures=failures,
            rng=np.random.default_rng(seed), ledger=batch_ledger,
        ).run_collection(plan, trace)
        return scalar_ledger, batch_ledger

    def test_without_failures(self, workload):
        scalar, batch = self._ledgers(workload)
        assert scalar.num_epochs == batch.num_epochs == len(workload[2])
        np.testing.assert_allclose(
            batch.energy_mj, scalar.energy_mj, rtol=1e-9, atol=0.0
        )
        np.testing.assert_array_equal(batch.messages, scalar.messages)
        np.testing.assert_array_equal(batch.bytes, scalar.bytes)
        np.testing.assert_allclose(
            np.stack(batch.epoch_energy), np.stack(scalar.epoch_energy),
            rtol=1e-9, atol=0.0,
        )

    def test_with_failures_under_shared_seed(self, workload):
        topology, __, __trace = workload
        failures = LinkFailureModel.uniform(
            topology, probability=0.3, reroute_extra_mj=2.0
        )
        scalar, batch = self._ledgers(
            workload, failures=failures, seed=3, capacity=200.0
        )
        assert scalar.total_mj > 0
        # retries actually bit: more messages than the failure-free run
        clean, __ = self._ledgers(workload)
        assert scalar.messages.sum() > clean.messages.sum()
        np.testing.assert_allclose(
            batch.energy_mj, scalar.energy_mj, rtol=1e-9, atol=0.0
        )
        np.testing.assert_array_equal(batch.messages, scalar.messages)
        np.testing.assert_array_equal(batch.bytes, scalar.bytes)
        np.testing.assert_allclose(
            batch.burn_down(), scalar.burn_down(), rtol=1e-9
        )

    def test_ledger_epochs_align_with_collections(self, workload):
        topology, plan, trace = workload
        ledger = EnergyLedger(topology.n)
        simulator = Simulator(topology, MICA2, ledger=ledger)
        simulator.run_collection(plan, trace[0])
        assert ledger.num_epochs == 1
        simulator.run_collection(plan, trace[1])
        assert ledger.num_epochs == 2
        # each epoch delta sums to that collection's ledger-scope spend
        # (message costs only; trigger/acquisition extras stay out)
        assert ledger.epoch_energy[0].sum() == pytest.approx(
            ledger.epoch_energy[1].sum()
        )


def test_obs_counters_and_event(workload):
    topology, plan, trace = workload
    obs = Instrumentation()
    simulator = BatchSimulator(topology, MICA2, instrumentation=obs)
    report = simulator.run_collection(plan, trace, label="eval")
    assert obs.metrics.counter("sim.batch.collections").value == 1
    assert obs.metrics.counter("sim.batch.collections.eval").value == 1
    assert obs.metrics.counter("sim.batch.epochs").value == len(trace)
    assert (
        obs.metrics.counter("sim.batch.messages").value
        == report.num_messages * len(trace)
    )
    assert obs.metrics.histogram("sim.batch.size").count == 1
    assert obs.metrics.histogram("sim.batch.seconds.eval").count == 1
    (event,) = obs.trace.events("batch_collection_run")
    assert event.data["epochs"] == len(trace)
