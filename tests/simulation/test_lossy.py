"""Tests for lossy (non-reliable) execution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.builder import line_topology
from repro.network.failures import LinkFailureModel
from repro.plans.execution import execute_plan
from repro.plans.plan import QueryPlan, top_k_set
from repro.simulation.lossy import execute_plan_lossy, redundancy_plan
from tests.conftest import tree_plan_readings


def reliable_failures(topology):
    return LinkFailureModel.uniform(topology, probability=0.0,
                                    reroute_extra_mj=0.0)


class TestLossyExecution:
    def test_no_failures_matches_reliable(self, medium_random, rng):
        readings = rng.normal(size=medium_random.n)
        plan = QueryPlan.naive_k(medium_random, 5)
        lossy = execute_plan_lossy(
            plan, readings, reliable_failures(medium_random), rng
        )
        reliable = execute_plan(plan, readings)
        assert lossy.returned == reliable.returned
        assert lossy.lost_messages == 0

    def test_certain_failure_loses_everything_below(self):
        topo = line_topology(4)
        failures = LinkFailureModel.uniform(topo, probability=1.0,
                                            reroute_extra_mj=0.0)
        plan = QueryPlan.full(topo)
        result = execute_plan_lossy(
            plan, [1.0, 2.0, 3.0, 4.0], failures, np.random.default_rng(0)
        )
        assert result.returned == [(1.0, 0)]  # only the root's own value
        assert result.lost_messages >= 1
        # the sender still paid: every edge logged a message
        assert len(result.messages) >= 1

    def test_partial_failure_degrades_accuracy(self, medium_random):
        failures = LinkFailureModel.uniform(medium_random, probability=0.3,
                                            reroute_extra_mj=0.0)
        rng = np.random.default_rng(1)
        plan = QueryPlan.naive_k(medium_random, 5)
        hits = 0
        trials = 60
        for __ in range(trials):
            readings = rng.normal(size=medium_random.n)
            truth = top_k_set(readings, 5)
            result = execute_plan_lossy(plan, readings, failures, rng)
            hits += len(result.returned_nodes & truth)
        mean_accuracy = hits / (5 * trials)
        assert 0.1 < mean_accuracy < 0.95  # degraded but not destroyed

    def test_lost_values_counted(self):
        topo = line_topology(3)
        failures = LinkFailureModel(
            failure_probability={1: 1.0}, reroute_extra_mj={}
        )
        plan = QueryPlan.full(topo)
        result = execute_plan_lossy(
            plan, [1.0, 2.0, 3.0], failures, np.random.default_rng(0)
        )
        assert result.lost_messages == 1
        assert result.lost_values == 2  # nodes 1 and 2's values


class TestRedundancyPlan:
    def test_widens_only_used_edges(self, small_tree):
        plan = QueryPlan(small_tree, {1: 2, 3: 1, 4: 1})
        widened = redundancy_plan(plan, extra=2)
        assert widened.bandwidth(1) == 4
        assert widened.bandwidth(3) == 3
        assert widened.bandwidth(2) == 0  # untouched: was unused

    def test_redundancy_improves_lossy_accuracy(self, medium_random):
        """Wider messages survive losses better (the §4.4 trade)."""
        failures = LinkFailureModel.uniform(medium_random, probability=0.25,
                                            reroute_extra_mj=0.0)
        base = QueryPlan.naive_k(medium_random, 3)
        wide = redundancy_plan(base, extra=3)
        rng_a = np.random.default_rng(2)
        rng_b = np.random.default_rng(2)  # identical failure draws
        data_rng = np.random.default_rng(3)
        base_hits = wide_hits = 0
        for __ in range(60):
            readings = data_rng.normal(size=medium_random.n)
            truth = top_k_set(readings, 3)
            base_hits += len(
                execute_plan_lossy(base, readings, failures, rng_a)
                .returned_nodes & truth
            )
            wide_hits += len(
                execute_plan_lossy(wide, readings, failures, rng_b)
                .returned_nodes & truth
            )
        assert wide_hits >= base_hits


@settings(max_examples=80, deadline=None)
@given(tree_plan_readings(),
       st.integers(min_value=0, max_value=2**32 - 1),
       st.floats(min_value=0.0, max_value=1.0),
       st.integers(min_value=1, max_value=5))
def test_lossy_never_beats_reliable(data, seed, probability, k):
    """Losing messages can only reduce delivered top-k hits: the flow
    through each edge is monotone in what survives below it.  (Note the
    *returned set* is not a subset of the reliable one — losses free up
    bandwidth for values that were otherwise filtered.)"""
    topology, bandwidths, readings = data
    plan = QueryPlan(topology, bandwidths)
    failures = LinkFailureModel.uniform(
        topology, probability=probability, reroute_extra_mj=0.0
    )
    lossy = execute_plan_lossy(
        plan, readings, failures, np.random.default_rng(seed)
    )
    reliable = execute_plan(plan, readings)
    truth = top_k_set(readings, k)
    assert len(lossy.returned_nodes & truth) <= len(
        reliable.returned_nodes & truth
    )
    # returned values are genuine readings, sorted, no duplicates
    for value, node in lossy.returned:
        assert float(readings[node]) == value
    nodes = [node for __, node in lossy.returned]
    assert len(nodes) == len(set(nodes))
    assert lossy.returned == sorted(lossy.returned, reverse=True)