"""Unit tests for distribution-phase costs."""

import pytest

from repro.network.builder import line_topology, star_topology
from repro.network.energy import EnergyModel
from repro.plans.plan import QueryPlan
from repro.simulation.distribution import initial_distribution_cost, trigger_cost

UNIFORM = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.5)


class TestInitialDistribution:
    def test_empty_plan_costs_nothing(self, small_tree):
        plan = QueryPlan(small_tree, {})
        assert initial_distribution_cost(plan, UNIFORM) == 0.0

    def test_one_unicast_per_participating_node(self, small_tree):
        plan = QueryPlan.from_chosen_nodes(small_tree, {3})  # path 3-1-0
        cost = initial_distribution_cost(plan, UNIFORM)
        # two participating non-root nodes, each >= one message cost
        assert cost >= 2 * UNIFORM.per_message_mj
        # subplan payloads make deeper installs dearer than 2 bare messages
        assert cost > 2 * UNIFORM.per_message_mj

    def test_install_on_order_of_collection(self, medium_random):
        """Paper §5: installing the plan costs on the order of one
        collection phase."""
        plan = QueryPlan.naive_k(medium_random, 5)
        install = initial_distribution_cost(plan, UNIFORM)
        collection = plan.static_cost(UNIFORM)
        assert 0.2 * collection <= install <= 5 * collection


class TestTrigger:
    def test_only_internal_nodes_broadcast(self):
        star = star_topology(5)
        plan = QueryPlan.full(star)
        # only the root has active children
        assert trigger_cost(plan, UNIFORM) == pytest.approx(
            UNIFORM.broadcast_cost()
        )

    def test_chain_broadcasts_along_path(self):
        chain = line_topology(4)
        plan = QueryPlan.full(chain)
        assert trigger_cost(plan, UNIFORM) == pytest.approx(
            3 * UNIFORM.broadcast_cost()
        )

    def test_trigger_much_cheaper_than_collection(self, medium_random):
        """Paper §2: subsequent distribution phases cost much less than
        a collection phase."""
        plan = QueryPlan.naive_k(medium_random, 5)
        assert trigger_cost(plan, UNIFORM) < 0.5 * plan.static_cost(UNIFORM)

    def test_unused_subtrees_not_triggered(self, small_tree):
        plan = QueryPlan.from_chosen_nodes(small_tree, {3})
        full = QueryPlan.full(small_tree)
        assert trigger_cost(plan, UNIFORM) < trigger_cost(full, UNIFORM)
