"""Unit tests for the simulator's energy accounting."""

import numpy as np
import pytest

from repro.network.builder import line_topology
from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.plans.plan import QueryPlan, top_k_set
from repro.simulation.runtime import Simulator

UNIFORM = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.5)


@pytest.fixture
def simulator(medium_random):
    return Simulator(medium_random, UNIFORM)


class TestEnergyAccounting:
    def test_measured_cost_at_most_static(self, medium_random, simulator, rng):
        """Static cost budgets the worst case; the measured cost of the
        collection itself can only be lower (subtrees may carry less)."""
        readings = rng.normal(size=medium_random.n)
        plan = QueryPlan.naive_k(medium_random, 5)
        report = simulator.run_collection(plan, readings, include_trigger=False)
        assert report.energy_mj <= plan.static_cost(UNIFORM) + 1e-9

    def test_full_plan_measured_equals_static(self, medium_random, simulator, rng):
        """With full bandwidth everywhere, every edge carries exactly
        its subtree, so measured == static."""
        readings = rng.normal(size=medium_random.n)
        plan = QueryPlan.full(medium_random)
        report = simulator.run_collection(plan, readings, include_trigger=False)
        assert report.energy_mj == pytest.approx(plan.static_cost(UNIFORM))

    def test_trigger_adds_energy(self, medium_random, simulator, rng):
        readings = rng.normal(size=medium_random.n)
        plan = QueryPlan.naive_k(medium_random, 3)
        bare = simulator.run_collection(plan, readings, include_trigger=False)
        with_trigger = simulator.run_collection(plan, readings)
        assert with_trigger.energy_mj > bare.energy_mj

    def test_message_and_value_counts(self):
        topo = line_topology(3)
        simulator = Simulator(topo, UNIFORM)
        plan = QueryPlan.full(topo)
        report = simulator.run_collection(plan, [1.0, 2.0, 3.0],
                                          include_trigger=False)
        assert report.num_messages == 2
        assert report.num_values_sent == 3  # 1 + 2
        assert report.energy_mj == pytest.approx(2 * 1.0 + 3 * 0.5)

    def test_naive_runs_report_answers(self, medium_random, simulator, rng):
        readings = rng.normal(size=medium_random.n)
        truth = top_k_set(readings, 4)
        assert simulator.run_naive_k(readings, 4).top_k_nodes(4) == truth
        assert simulator.run_naive_one(readings, 4).top_k_nodes(4) == truth

    def test_proof_collection_reports_proven(self, medium_random, simulator, rng):
        readings = rng.normal(size=medium_random.n)
        report = simulator.run_proof_collection(
            QueryPlan.full(medium_random), readings
        )
        assert report.proven_count == medium_random.n

    def test_collect_full_sample(self, medium_random, simulator, rng):
        readings = rng.normal(size=medium_random.n)
        report = simulator.collect_full_sample(readings)
        assert {n for __, n in report.returned} == set(medium_random.nodes)

    def test_install_cost_positive(self, medium_random, simulator):
        plan = QueryPlan.naive_k(medium_random, 2)
        assert simulator.install_cost(plan) > 0


class TestFailures:
    def test_reliable_network_never_retries(self, medium_random, rng):
        simulator = Simulator(medium_random, UNIFORM)
        readings = rng.normal(size=medium_random.n)
        report = simulator.run_collection(QueryPlan.full(medium_random), readings)
        assert report.num_retries == 0

    def test_certain_failure_always_retries(self, rng):
        topo = line_topology(4)
        failures = LinkFailureModel.uniform(topo, probability=1.0,
                                            reroute_extra_mj=2.0)
        simulator = Simulator(topo, UNIFORM, failures=failures, rng=rng)
        plan = QueryPlan.full(topo)
        report = simulator.run_collection(plan, [1, 2, 3, 4], include_trigger=False)
        assert report.num_retries == report.num_messages
        # each retry pays the message again plus the re-route penalty
        reliable = Simulator(topo, UNIFORM).run_collection(
            plan, [1, 2, 3, 4], include_trigger=False
        )
        assert report.energy_mj == pytest.approx(
            2 * reliable.energy_mj + 2.0 * report.num_messages
        )

    def test_partial_failure_statistics(self):
        topo = line_topology(2)
        failures = LinkFailureModel.uniform(topo, probability=0.3,
                                            reroute_extra_mj=0.0)
        simulator = Simulator(topo, UNIFORM, failures=failures,
                              rng=np.random.default_rng(11))
        plan = QueryPlan.full(topo)
        retries = sum(
            simulator.run_collection(plan, [1.0, 2.0]).num_retries
            for __ in range(2000)
        )
        assert 0.25 < retries / 2000 < 0.35
