"""Unit tests for the metrics registry: counters, gauges, histograms,
timers, and the JSON-able dump/restore."""

import time

import pytest

from repro.errors import ObservabilityError
from repro.obs import Instrumentation, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("queries")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_rejects_negative_increments(self):
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            MetricsRegistry().counter("x").inc(-1.0)


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("budget")
        gauge.set(10.0)
        gauge.set(4.0)
        assert gauge.value == 4.0


class TestHistogram:
    def test_summary_math(self):
        hist = MetricsRegistry().histogram("latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == 10.0
        assert hist.mean == 2.5
        assert hist.min == 1.0
        assert hist.max == 4.0
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["p50"] == pytest.approx(3.0)
        assert summary["max"] == 4.0

    def test_empty_summary_is_zeroed(self):
        summary = MetricsRegistry().histogram("empty").summary()
        assert summary == {
            "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
            "max": 0.0, "total": 0.0,
        }

    def test_reservoir_is_bounded_but_count_exact(self):
        from repro.obs.metrics import Histogram

        hist = Histogram("bounded", sample_limit=10)
        for value in range(100):
            hist.observe(float(value))
        assert hist.count == 100
        assert len(hist.sample) == 10
        assert hist.max == 99.0


class TestTimer:
    def test_timer_observes_elapsed(self):
        registry = MetricsRegistry()
        with registry.timer("work") as timer:
            time.sleep(0.01)
        hist = registry.histogram("work")
        assert hist.count == 1
        assert timer.elapsed >= 0.01
        assert hist.total == timer.elapsed

    def test_timers_nest(self):
        registry = MetricsRegistry()
        with registry.timer("outer"):
            with registry.timer("inner"):
                time.sleep(0.005)
            with registry.timer("inner"):
                pass
        assert registry.histogram("outer").count == 1
        assert registry.histogram("inner").count == 2
        # the outer span covers both inner spans
        assert (
            registry.histogram("outer").total
            >= registry.histogram("inner").total
        )

    def test_same_name_nests_independently(self):
        registry = MetricsRegistry()
        with registry.timer("t"):
            with registry.timer("t"):
                pass
        assert registry.histogram("t").count == 2


class TestRoundTrip:
    def test_registry_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.gauge("b").set(1.5)
        registry.histogram("c").observe(2.0)
        registry.histogram("c").observe(6.0)

        restored = MetricsRegistry.from_dict(registry.to_dict())
        assert restored.counter("a").value == 3
        assert restored.gauge("b").value == 1.5
        assert restored.histogram("c").count == 2
        assert restored.histogram("c").summary() == (
            registry.histogram("c").summary()
        )

    def test_malformed_dump_raises(self):
        with pytest.raises(ObservabilityError, match="malformed"):
            MetricsRegistry.from_dict({"counters": {"a": {}}})

    def test_instrumentation_json_round_trip(self):
        from repro.obs import from_json, to_json

        obs = Instrumentation()
        obs.counter("n").inc()
        obs.event("lp_solve", model="m", wall_seconds=0.1)
        restored = from_json(to_json(obs))
        assert restored.metrics.counter("n").value == 1
        assert restored.trace.kinds() == ["lp_solve"]
        assert restored.trace.events("lp_solve")[0].data["model"] == "m"


class TestMergeableBuckets:
    """The fixed log-linear bucket grid behind fleet-level quantiles."""

    def _hist(self, name="h"):
        from repro.obs.metrics import Histogram

        return Histogram(name)

    def test_bucket_bounds_cover_each_observation(self):
        from repro.obs.metrics import bucket_index, bucket_upper_bound

        for value in (1e-9, 3.7e-4, 0.009999, 0.5, 1.0, 9.999, 42.0, 8.8e7):
            index = bucket_index(value)
            assert value <= bucket_upper_bound(index) * (1 + 1e-9)
            # and the bound is tight: one linear step wide, so at
            # worst 2x the value (the step-1 -> step-2 edge)
            assert bucket_upper_bound(index) <= value * 2.0 * (1 + 1e-9)

    def test_degenerate_values_land_in_sentinel_buckets(self):
        from repro.obs.metrics import (
            bucket_index,
            bucket_upper_bound,
        )

        assert bucket_index(0.0) == 0
        assert bucket_index(-1.0) == 0
        assert bucket_index(float("nan")) == 0
        assert bucket_upper_bound(0) == 0.0
        assert bucket_upper_bound(bucket_index(float("inf"))) == float("inf")
        assert bucket_index(1e300) == bucket_index(float("inf"))

    def test_quantile_reads_buckets_and_clamps_to_extrema(self):
        hist = self._hist()
        for value in [0.001] * 98 + [0.5, 2.0]:
            hist.observe(value)
        assert hist.quantile(50) == pytest.approx(0.001, rel=0.15)
        # rank 98.01 of 100 lands on the 0.5 straggler, like numpy's
        # interpolated percentile would
        assert hist.quantile(99) == pytest.approx(0.5, rel=0.15)
        assert hist.quantile(100) == pytest.approx(2.0)
        assert hist.quantile(0) >= hist.min
        assert hist.quantile(100) <= hist.max

    def test_merge_is_exact_on_counts_extrema_and_buckets(self):
        a, b = self._hist("a"), self._hist("b")
        for value in (0.01, 0.02, 0.04):
            a.observe(value)
        for value in (1.0, 2.0):
            b.observe(value)
        a.merge(b)
        assert a.count == 5
        assert a.total == pytest.approx(3.07)
        assert a.min == pytest.approx(0.01)
        assert a.max == pytest.approx(2.0)
        assert sum(a.buckets.values()) == 5
        # merged quantiles see both shards' territory
        assert a.quantile(99) > 0.5
        assert a.quantile(10) < 0.1

    def test_merge_with_empty_is_identity(self):
        a, b = self._hist("a"), self._hist("b")
        a.observe(1.0)
        before = a.to_merge_dict()
        a.merge(b)
        assert a.to_merge_dict() == before

    def test_merged_quantiles_match_a_single_big_histogram(self):
        whole = self._hist("whole")
        parts = [self._hist(f"part{i}") for i in range(4)]
        values = [0.001 * (i + 1) for i in range(400)]
        for i, value in enumerate(values):
            whole.observe(value)
            parts[i % 4].observe(value)
        merged = parts[0]
        for part in parts[1:]:
            merged.merge(part)
        for q in (50, 90, 95, 99):
            assert merged.quantile(q) == whole.quantile(q)

    def test_merge_dict_round_trip(self):
        from repro.obs.metrics import Histogram

        hist = self._hist()
        for value in (0.003, 0.3, 33.0):
            hist.observe(value)
        restored = Histogram.from_merge_dict("h", hist.to_merge_dict())
        assert restored.count == hist.count
        assert restored.buckets == hist.buckets
        assert restored.quantile(50) == hist.quantile(50)
        # merge dicts are JSON-safe (string bucket keys)
        import json

        assert json.loads(json.dumps(hist.to_merge_dict()))

    def test_malformed_merge_dict_raises(self):
        from repro.obs.metrics import Histogram

        with pytest.raises(ObservabilityError):
            Histogram.from_merge_dict("h", {"total": 1.0})
        with pytest.raises(ObservabilityError):
            Histogram.from_merge_dict(
                "h", {"count": 1, "total": 1.0, "buckets": {"x": "y"}}
            )

    def test_registry_dump_restores_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(0.25)
        restored = MetricsRegistry.from_dict(registry.to_dict())
        assert restored.histogram("lat").buckets == (
            registry.histogram("lat").buckets
        )
        assert restored.histogram("lat").quantile(50) == pytest.approx(
            registry.histogram("lat").quantile(50)
        )
