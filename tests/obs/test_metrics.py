"""Unit tests for the metrics registry: counters, gauges, histograms,
timers, and the JSON-able dump/restore."""

import time

import pytest

from repro.errors import ObservabilityError
from repro.obs import Instrumentation, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("queries")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_rejects_negative_increments(self):
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            MetricsRegistry().counter("x").inc(-1.0)


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("budget")
        gauge.set(10.0)
        gauge.set(4.0)
        assert gauge.value == 4.0


class TestHistogram:
    def test_summary_math(self):
        hist = MetricsRegistry().histogram("latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == 10.0
        assert hist.mean == 2.5
        assert hist.min == 1.0
        assert hist.max == 4.0
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["p50"] == pytest.approx(3.0)
        assert summary["max"] == 4.0

    def test_empty_summary_is_zeroed(self):
        summary = MetricsRegistry().histogram("empty").summary()
        assert summary == {
            "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
            "max": 0.0, "total": 0.0,
        }

    def test_reservoir_is_bounded_but_count_exact(self):
        from repro.obs.metrics import Histogram

        hist = Histogram("bounded", sample_limit=10)
        for value in range(100):
            hist.observe(float(value))
        assert hist.count == 100
        assert len(hist.sample) == 10
        assert hist.max == 99.0


class TestTimer:
    def test_timer_observes_elapsed(self):
        registry = MetricsRegistry()
        with registry.timer("work") as timer:
            time.sleep(0.01)
        hist = registry.histogram("work")
        assert hist.count == 1
        assert timer.elapsed >= 0.01
        assert hist.total == timer.elapsed

    def test_timers_nest(self):
        registry = MetricsRegistry()
        with registry.timer("outer"):
            with registry.timer("inner"):
                time.sleep(0.005)
            with registry.timer("inner"):
                pass
        assert registry.histogram("outer").count == 1
        assert registry.histogram("inner").count == 2
        # the outer span covers both inner spans
        assert (
            registry.histogram("outer").total
            >= registry.histogram("inner").total
        )

    def test_same_name_nests_independently(self):
        registry = MetricsRegistry()
        with registry.timer("t"):
            with registry.timer("t"):
                pass
        assert registry.histogram("t").count == 2


class TestRoundTrip:
    def test_registry_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.gauge("b").set(1.5)
        registry.histogram("c").observe(2.0)
        registry.histogram("c").observe(6.0)

        restored = MetricsRegistry.from_dict(registry.to_dict())
        assert restored.counter("a").value == 3
        assert restored.gauge("b").value == 1.5
        assert restored.histogram("c").count == 2
        assert restored.histogram("c").summary() == (
            registry.histogram("c").summary()
        )

    def test_malformed_dump_raises(self):
        with pytest.raises(ObservabilityError, match="malformed"):
            MetricsRegistry.from_dict({"counters": {"a": {}}})

    def test_instrumentation_json_round_trip(self):
        from repro.obs import from_json, to_json

        obs = Instrumentation()
        obs.counter("n").inc()
        obs.event("lp_solve", model="m", wall_seconds=0.1)
        restored = from_json(to_json(obs))
        assert restored.metrics.counter("n").value == 1
        assert restored.trace.kinds() == ["lp_solve"]
        assert restored.trace.events("lp_solve")[0].data["model"] == "m"
