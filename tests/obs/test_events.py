"""Unit tests for the typed event trace ring buffer."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import EVENT_KINDS, EventTrace, Instrumentation


class TestRecording:
    def test_records_in_order_with_sequence(self):
        trace = EventTrace()
        trace.record("lp_solve", model="a")
        trace.record("plan_built", planner="greedy")
        assert trace.kinds() == ["lp_solve", "plan_built"]
        assert [event.seq for event in trace] == [0, 1]

    def test_rejects_unknown_kind(self):
        with pytest.raises(ObservabilityError, match="unknown event kind"):
            EventTrace().record("made_up_kind")

    def test_every_documented_kind_is_accepted(self):
        trace = EventTrace()
        for kind in EVENT_KINDS:
            trace.record(kind)
        assert trace.kinds() == list(EVENT_KINDS)

    def test_filter_by_kind(self):
        trace = EventTrace()
        trace.record("lp_solve", model="a")
        trace.record("collection_run", label="x")
        trace.record("lp_solve", model="b")
        models = [event.data["model"] for event in trace.events("lp_solve")]
        assert models == ["a", "b"]

    def test_counts(self):
        trace = EventTrace()
        trace.record("lp_solve")
        trace.record("lp_solve")
        trace.record("plan_built")
        assert trace.counts() == {"lp_solve": 2, "plan_built": 1}


class TestRingBuffer:
    def test_eviction_keeps_newest(self):
        trace = EventTrace(capacity=3)
        for i in range(5):
            trace.record("lp_solve", index=i)
        assert len(trace) == 3
        assert [event.data["index"] for event in trace] == [2, 3, 4]
        assert trace.dropped == 2
        assert trace.total_recorded == 5

    def test_capacity_one(self):
        trace = EventTrace(capacity=1)
        trace.record("lp_solve", index=0)
        trace.record("plan_built", index=1)
        assert trace.kinds() == ["plan_built"]
        assert trace.dropped == 1

    def test_invalid_capacity(self):
        with pytest.raises(ObservabilityError):
            EventTrace(capacity=0)

    def test_round_trip_preserves_eviction_accounting(self):
        trace = EventTrace(capacity=2)
        for i in range(4):
            trace.record("lp_solve", index=i)
        restored = EventTrace.from_dict(trace.to_dict())
        assert restored.dropped == 2
        assert [event.data["index"] for event in restored] == [2, 3]


class TestInstrumentationEvents:
    def test_event_bumps_counter_and_trace(self):
        obs = Instrumentation()
        obs.event("replan_skipped", threshold=1.0)
        assert obs.metrics.counter("events.replan_skipped").value == 1
        assert obs.trace.kinds() == ["replan_skipped"]

    def test_trace_capacity_is_configurable(self):
        obs = Instrumentation(trace_capacity=2)
        for __ in range(3):
            obs.event("lp_solve")
        assert len(obs.trace) == 2
        assert obs.trace.dropped == 1
