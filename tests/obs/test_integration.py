"""Integration: an instrumented end-to-end engine run emits the
expected event sequence, and disabled instrumentation (None) leaves
behavior untouched with the shared no-op fast path."""

import numpy as np
import pytest

from repro.datagen.gaussian import random_gaussian_field
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.obs import NULL_TIMER, Instrumentation, maybe_timer, record_event
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.query.engine import EngineConfig, TopKEngine


@pytest.fixture
def setting():
    rng = np.random.default_rng(5)
    topology = random_topology(24, rng=rng, radio_range=40.0)
    field = random_gaussian_field(24, rng)
    return rng, topology, field


def make_engine(topology, instrumentation=None, **config):
    return TopKEngine(
        topology,
        EnergyModel.mica2(),
        k=4,
        planner=LPNoLFPlanner(),
        config=EngineConfig(budget_mj=40.0, **config),
        rng=np.random.default_rng(0),
        instrumentation=instrumentation,
    )


class TestEventSequence:
    def test_bootstrap_then_query_sequence(self, setting):
        rng, topology, field = setting
        obs = Instrumentation()
        engine = make_engine(topology, instrumentation=obs)
        for __ in range(5):
            engine.feed_sample(field.sample(rng))
        engine.query(field.sample(rng))

        kinds = obs.trace.kinds()
        # five bootstrap samples, then the first query triggers an LP
        # solve, a plan build, an install, and one collection
        assert kinds[:5] == ["sample_collected"] * 5
        assert kinds[5:] == [
            "lp_solve", "plan_built", "plan_installed", "collection_run",
        ]
        installed = obs.trace.events("plan_installed")[0]
        assert installed.data["reason"] == "initial"
        assert installed.data["install_mj"] > 0

    def test_lp_solve_event_carries_solver_stats(self, setting):
        rng, topology, field = setting
        obs = Instrumentation()
        engine = make_engine(topology, instrumentation=obs)
        for __ in range(4):
            engine.feed_sample(field.sample(rng))
        engine.ensure_plan()
        event = obs.trace.events("lp_solve")[0]
        assert event.data["model"] == "prospector-lp-no-lf"
        assert event.data["backend"] == "scipy-highs"
        assert event.data["variables"] > 0
        assert event.data["constraints"] > 0
        assert event.data["wall_seconds"] >= 0
        hist = obs.metrics.histogram("lp.solve_seconds.prospector-lp-no-lf")
        assert hist.count == 1

    def test_collection_depth_breakdown_sums_to_totals(self, setting):
        rng, topology, field = setting
        obs = Instrumentation()
        engine = make_engine(topology, instrumentation=obs)
        for __ in range(4):
            engine.feed_sample(field.sample(rng))
        engine.query(field.sample(rng))
        event = obs.trace.events("collection_run")[0]
        by_depth = event.data["by_depth"]
        assert by_depth  # a non-trivial plan crosses at least one edge
        assert sum(d["messages"] for d in by_depth.values()) == (
            event.data["messages"]
        )
        # per-depth energy covers the messages; the event total also
        # includes trigger + acquisition extras, so it is strictly more
        message_energy = sum(d["energy_mj"] for d in by_depth.values())
        assert 0 < message_energy < event.data["energy_mj"]

    def test_declined_replan_is_counted_and_retried(self, setting):
        rng, topology, field = setting
        obs = Instrumentation()
        engine = make_engine(
            topology, instrumentation=obs,
            replan_every=2, replan_improvement=1e9,
        )
        # exploit-only: zero the floor too, or accuracy feedback
        # (max(base_rate, rate * decay)) restores exploration
        engine.sampler.rate = 0.0
        engine.sampler.base_rate = 0.0
        for __ in range(5):
            engine.feed_sample(field.sample(rng))
        outcomes = [engine.step(field.sample(rng)) for __ in range(5)]
        assert all(o.action == "query" for o in outcomes)
        # step 1 installs the initial plan (clock 0); the clock reaches
        # replan_every=2 on step 3.  The impossible threshold declines
        # every candidate, and a declined candidate must NOT reset the
        # clock, so steps 3, 4, AND 5 all re-attempt — the pre-fix code
        # reset the clock on decline and would only re-attempt on step 5.
        assert obs.metrics.counter("engine.replans_skipped").value == 3
        assert len(obs.trace.events("replan_skipped")) == 3
        assert engine._queries_since_replan == 4

    def test_energy_counters_match_engine_total(self, setting):
        rng, topology, field = setting
        obs = Instrumentation()
        engine = make_engine(topology, instrumentation=obs)
        engine.feed_sample(field.sample(rng), charge_energy=True)
        for __ in range(6):
            engine.step(field.sample(rng))
        engine.audit(field.sample(rng))
        assert obs.metrics.counter("engine.energy_mj").value == (
            pytest.approx(engine.total_energy_mj)
        )
        categories = sum(
            obs.metrics.counter(f"engine.energy_mj.{cat}").value
            for cat in ("sample", "query", "install", "audit")
        )
        assert categories == pytest.approx(engine.total_energy_mj)

    def test_audit_records_event(self, setting):
        rng, topology, field = setting
        obs = Instrumentation()
        engine = make_engine(topology, instrumentation=obs)
        for __ in range(6):
            engine.feed_sample(field.sample(rng))
        result = engine.audit(field.sample(rng))
        event = obs.trace.events("audit_run")[0]
        assert event.data["estimated_accuracy"] == result.estimated_accuracy
        assert event.data["audit_energy_mj"] == result.audit_energy_mj

    def test_failure_observations_recorded(self, setting):
        from repro.network.failures import LinkFailureModel

        rng, topology, field = setting
        obs = Instrumentation()
        failures = LinkFailureModel.uniform(
            topology, probability=0.6, reroute_extra_mj=1.0
        )
        engine = TopKEngine(
            topology,
            EnergyModel.mica2(),
            k=4,
            planner=LPNoLFPlanner(),
            config=EngineConfig(budget_mj=60.0),
            failures=failures,
            rng=np.random.default_rng(1),
            instrumentation=obs,
        )
        for __ in range(5):
            engine.feed_sample(field.sample(rng))
        for __ in range(10):
            engine.query(field.sample(rng))
        observed = obs.metrics.counter("engine.failures_observed").value
        assert observed > 0
        assert len(obs.trace.events("failure_observed")) == observed


class TestDisabledInstrumentation:
    def test_default_is_none_everywhere(self, setting):
        __, topology, __ = setting
        engine = make_engine(topology)
        assert engine.instrumentation is None
        assert engine.simulator.instrumentation is None

    def test_disabled_run_matches_enabled_run(self, setting):
        rng, topology, field = setting
        samples = [field.sample(rng) for __ in range(10)]

        def run(instrumentation):
            engine = make_engine(topology, instrumentation=instrumentation)
            for reading in samples[:4]:
                engine.feed_sample(reading)
            outcomes = [engine.step(r) for r in samples[4:]]
            return engine.total_energy_mj, [o.action for o in outcomes]

        assert run(None) == run(Instrumentation())

    def test_noop_helpers_allocate_nothing(self):
        # the shared singleton IS the disabled fast path: no fresh
        # objects, no events, no exceptions
        assert maybe_timer(None, "anything") is NULL_TIMER
        assert maybe_timer(None, "other") is NULL_TIMER
        with maybe_timer(None, "x") as timer:
            assert timer is NULL_TIMER
        assert record_event(None, "lp_solve", ignored=1) is None

    def test_planner_path_untimed_when_disabled(self, setting):
        rng, topology, field = setting
        obs = Instrumentation()
        # same planner instance, two contexts: only the instrumented
        # context records anything
        from repro.planners.base import PlanningContext

        planner = LPNoLFPlanner()
        window = [field.sample(rng) for __ in range(5)]
        from repro.sampling.window import SampleWindow

        win = SampleWindow(10)
        for row in window:
            win.add(row)
        base = dict(
            topology=topology, energy=EnergyModel.mica2(),
            samples=win.matrix(4), k=4, budget=40.0,
        )
        planner.plan(PlanningContext(**base))
        assert obs.metrics.histograms == {}
        planner.plan(PlanningContext(**base, instrumentation=obs))
        assert obs.metrics.counter("plan.builds.lp-no-lf").value == 1


class TestSweepInstrumentation:
    """The lp.sweep.* counters and lp_sweep event from solve_sweep."""

    def _sweep(self, backend_cls):
        from repro.lp.fastbuild import compile_lp_lf_parametric
        from tests.lp.test_fastbuild import make_context

        obs = Instrumentation()
        context = make_context(1, 10, 6, 3)
        backend = backend_cls(instrumentation=obs)
        parametric = compile_lp_lf_parametric(context)
        budgets = [context.budget * f for f in (0.8, 1.0, 1.3, 1.7)]
        members = backend.solve_sweep(parametric, parametric.rhs_values(budgets))
        return obs, members

    def test_simplex_sweep_counters_and_event(self):
        from repro.lp import SimplexBackend

        obs, members = self._sweep(SimplexBackend)
        assert obs.metrics.counter("lp.sweep.solves").value == 1
        assert obs.metrics.counter("lp.sweep.members").value == len(members)
        warm = sum(1 for m in members if m.stats.warm_started)
        assert obs.metrics.counter("lp.sweep.warm_hits").value == warm
        assert warm >= 1
        assert obs.metrics.counter("lp.warm_starts").value == warm
        event = obs.trace.events("lp_sweep")[0]
        assert event.data["model"] == "prospector-lp-lf"
        assert event.data["members"] == len(members)
        assert event.data["warm_hits"] == warm
        assert event.data["seconds"] >= 0
        hist = obs.metrics.histogram("lp.sweep.seconds.prospector-lp-lf")
        assert hist.count == 1
        # every member still records an ordinary lp_solve event too
        solves = obs.trace.events("lp_solve")
        assert len(solves) == len(members)
        assert solves[0].data["warm_started"] is False
        assert any(e.data["warm_started"] for e in solves[1:])

    def test_scipy_sweep_counts_no_warm_hits(self):
        from repro.lp import ScipyBackend

        obs, members = self._sweep(ScipyBackend)
        assert obs.metrics.counter("lp.sweep.solves").value == 1
        assert obs.metrics.counter("lp.sweep.warm_hits").value == 0
        assert obs.metrics.counter("lp.sweep.pivots_saved").value == 0
        assert obs.trace.events("lp_sweep")[0].data["members"] == len(members)

    def test_record_lp_solve_tuple_compat(self):
        """Stats objects without the new fields still record cleanly."""
        class LegacyStats:
            backend = "legacy"
            wall_seconds = 0.01
            iterations = 3
            num_variables = 2
            num_constraints = 1

        obs = Instrumentation()
        obs.record_lp_solve("legacy-model", LegacyStats())
        event = obs.trace.events("lp_solve")[0]
        assert event.data["warm_started"] is False
        assert event.data["pivots"] == 0
        assert obs.metrics.counter("lp.warm_starts").value == 0
