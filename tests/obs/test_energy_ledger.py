"""Tests for per-node energy telemetry (repro.obs.energy)."""

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.obs import EnergyLedger, Instrumentation


class TestConstruction:
    def test_rejects_empty_network(self):
        with pytest.raises(ObservabilityError, match=">= 1 node"):
            EnergyLedger(0)

    def test_scalar_capacity_broadcasts(self):
        ledger = EnergyLedger(3, capacity_mj=10.0)
        np.testing.assert_array_equal(ledger.capacity_mj, [10.0, 10.0, 10.0])

    def test_per_node_capacity_kept(self):
        ledger = EnergyLedger(2, capacity_mj=[5.0, 8.0])
        np.testing.assert_array_equal(ledger.capacity_mj, [5.0, 8.0])

    def test_capacity_must_be_positive(self):
        with pytest.raises(ObservabilityError, match="positive"):
            EnergyLedger(2, capacity_mj=[5.0, 0.0])


class TestCharging:
    def test_charge_accumulates_per_node(self):
        ledger = EnergyLedger(3)
        ledger.charge(1, 2.5, messages=1, nbytes=32)
        ledger.charge(1, 0.5, messages=1)
        ledger.charge(2, 1.0, messages=1, nbytes=8)
        np.testing.assert_allclose(ledger.energy_mj, [0.0, 3.0, 1.0])
        np.testing.assert_array_equal(ledger.messages, [0, 2, 1])
        np.testing.assert_array_equal(ledger.bytes, [0, 32, 8])
        assert ledger.total_mj == pytest.approx(4.0)

    def test_end_epoch_snapshots_deltas(self):
        ledger = EnergyLedger(2)
        ledger.charge(0, 1.0)
        assert ledger.end_epoch() == 0
        ledger.charge(0, 0.5)
        ledger.charge(1, 2.0)
        assert ledger.end_epoch() == 1
        assert ledger.num_epochs == 2
        np.testing.assert_allclose(ledger.epoch_energy[0], [1.0, 0.0])
        np.testing.assert_allclose(ledger.epoch_energy[1], [0.5, 2.0])
        np.testing.assert_allclose(
            ledger.cumulative_energy(), [[1.0, 0.0], [1.5, 2.0]]
        )

    def test_charge_epochs_block(self):
        ledger = EnergyLedger(2)
        ledger.charge_epochs(
            np.array([[1.0, 2.0], [3.0, 4.0]]),
            messages=np.array([2, 1]),
            nbytes=np.array([[8, 4], [2, 0]]),
        )
        assert ledger.num_epochs == 2
        np.testing.assert_allclose(ledger.energy_mj, [4.0, 6.0])
        # (n,)-shaped counts apply to every epoch; (E, n) blocks sum
        np.testing.assert_array_equal(ledger.messages, [4, 2])
        np.testing.assert_array_equal(ledger.bytes, [10, 4])

    def test_charge_epochs_rejects_bad_shapes(self):
        ledger = EnergyLedger(2)
        with pytest.raises(ObservabilityError, match=r"\(E, 2\)"):
            ledger.charge_epochs(np.zeros(4))
        with pytest.raises(ObservabilityError, match="messages shape"):
            ledger.charge_epochs(
                np.zeros((3, 2)), messages=np.zeros((2, 2))
            )


class TestDerivedViews:
    def burned(self) -> EnergyLedger:
        ledger = EnergyLedger(2, capacity_mj=10.0)
        for __ in range(3):
            ledger.charge(0, 2.0)
            ledger.charge(1, 1.0)
            ledger.end_epoch()
        return ledger

    def test_remaining_fraction_and_burn_down(self):
        ledger = self.burned()
        np.testing.assert_allclose(
            ledger.remaining_fraction(),
            [[0.8, 0.9], [0.6, 0.8], [0.4, 0.7]],
        )
        np.testing.assert_allclose(ledger.burn_down(), [0.8, 0.6, 0.4])

    def test_remaining_fraction_clips_at_zero(self):
        ledger = EnergyLedger(1, capacity_mj=1.0)
        ledger.charge(0, 5.0)
        ledger.end_epoch()
        np.testing.assert_allclose(ledger.remaining_fraction(), [[0.0]])

    def test_lifetime_epoch_none_while_alive(self):
        assert self.burned().lifetime_epoch() is None

    def test_lifetime_epoch_first_death(self):
        ledger = EnergyLedger(2, capacity_mj=4.0)
        for __ in range(3):
            ledger.charge(0, 2.0)
            ledger.charge(1, 1.0)
            ledger.end_epoch()
        assert ledger.lifetime_epoch() == 1  # node 0 hits 4.0 mJ there

    def test_projected_lifetime_from_average_rate(self):
        # node 0 burns 2 mJ/epoch of 10 mJ -> death at epoch 5
        assert self.burned().projected_lifetime() == pytest.approx(5.0)

    def test_projected_lifetime_none_without_spend_or_epochs(self):
        idle = EnergyLedger(2, capacity_mj=10.0)
        assert idle.projected_lifetime() is None  # no epochs yet
        idle.end_epoch()
        assert idle.projected_lifetime() is None  # zero burn everywhere

    def test_views_require_capacity(self):
        ledger = EnergyLedger(2)
        ledger.charge(0, 1.0)
        ledger.end_epoch()
        with pytest.raises(ObservabilityError, match="capacity"):
            ledger.remaining_fraction()
        with pytest.raises(ObservabilityError, match="capacity"):
            ledger.lifetime_epoch()
        assert ledger.projected_lifetime() is None

    def test_empty_ledger_views_are_empty(self):
        ledger = EnergyLedger(2, capacity_mj=10.0)
        assert ledger.cumulative_energy().shape == (0, 2)
        assert ledger.burn_down().shape == (0,)

    def test_hottest_orders_by_spend(self):
        ledger = EnergyLedger(4)
        ledger.charge(2, 9.0, messages=3, nbytes=24)
        ledger.charge(0, 5.0, messages=1, nbytes=8)
        ledger.charge(3, 1.0, messages=1, nbytes=4)
        top = ledger.hottest(2)
        assert [row["node"] for row in top] == [2, 0]
        assert top[0] == {
            "node": 2, "energy_mj": 9.0, "messages": 3, "bytes": 24,
        }
        assert ledger.hottest(0) == []


class TestPublish:
    def test_headline_gauges(self):
        obs = Instrumentation()
        ledger = EnergyLedger(2, capacity_mj=10.0)
        ledger.charge(0, 2.0)
        ledger.charge(1, 1.0)
        ledger.end_epoch()
        ledger.publish(obs)
        gauges = obs.metrics.gauges
        assert gauges["energy.ledger.total_mj"].value == pytest.approx(3.0)
        assert gauges["energy.ledger.epochs"].value == 1
        assert gauges["energy.ledger.hottest_node"].value == 0
        assert gauges["energy.ledger.hottest_mj"].value == pytest.approx(2.0)
        assert gauges[
            "energy.ledger.min_remaining_fraction"
        ].value == pytest.approx(0.8)
        assert gauges[
            "energy.ledger.projected_lifetime_epochs"
        ].value == pytest.approx(5.0)

    def test_publish_without_capacity_skips_burn_gauges(self):
        obs = Instrumentation()
        ledger = EnergyLedger(1)
        ledger.charge(0, 1.0)
        ledger.end_epoch()
        ledger.publish(obs)
        assert "energy.ledger.total_mj" in obs.metrics.gauges
        assert "energy.ledger.min_remaining_fraction" not in obs.metrics.gauges


class TestSerialization:
    def test_round_trip(self):
        ledger = EnergyLedger(2, capacity_mj=[5.0, 8.0])
        ledger.charge(0, 1.0, messages=2, nbytes=16)
        ledger.end_epoch()
        ledger.charge(1, 2.0, messages=1, nbytes=4)
        ledger.end_epoch()
        restored = EnergyLedger.from_dict(ledger.to_dict())
        assert restored.to_dict() == ledger.to_dict()
        np.testing.assert_allclose(restored.burn_down(), ledger.burn_down())
        # restored ledgers keep accumulating from where they left off
        restored.charge(0, 0.5)
        assert restored.end_epoch() == 2
        np.testing.assert_allclose(restored.epoch_energy[2], [0.5, 0.0])

    def test_malformed_dump_raises(self):
        with pytest.raises(ObservabilityError, match="malformed"):
            EnergyLedger.from_dict({"num_nodes": 2})
