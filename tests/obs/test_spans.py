"""Tests for hierarchical span tracing (repro.obs.spans)."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import NULL_SPAN, Instrumentation, Span, SpanTracer, maybe_span


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTiming:
    def test_exact_durations_under_fake_clock(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("outer") as outer:
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(0.25)
            clock.advance(0.5)
        assert outer.duration_s == pytest.approx(1.75)
        assert inner.duration_s == pytest.approx(0.25)
        assert outer.self_s() == pytest.approx(1.5)
        assert outer.finished and inner.finished

    def test_open_span_reports_elapsed_so_far(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("work") as span:
            clock.advance(2.0)
            assert not span.finished
            assert span.duration_s == pytest.approx(2.0)

    def test_annotate_returns_span_and_overwrites(self):
        tracer = SpanTracer(clock=FakeClock())
        span = tracer.span("s", mode="cold")
        assert span.annotate(mode="warm", pivots=3) is span
        assert span.attributes == {"mode": "warm", "pivots": 3}


class TestNesting:
    def test_nesting_follows_lexical_structure_across_helpers(self):
        # a "solve" opened by a helper while "plan" is open becomes its
        # child, because both hang off the same Instrumentation
        obs = Instrumentation(clock=FakeClock())

        def helper():
            with obs.span("solve", backend="scipy-highs"):
                pass

        with obs.span("plan", planner="lp-lf"):
            helper()
            helper()
        (root,) = obs.spans.roots
        assert root.name == "plan"
        assert [child.name for child in root.children] == ["solve", "solve"]

    def test_sequential_roots_stay_separate(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [root.name for root in tracer.roots] == ["a", "b"]
        assert tracer.current is None

    def test_current_and_find_and_walk(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("plan"):
            with tracer.span("solve") as solve:
                assert tracer.current is solve
            with tracer.span("solve"):
                pass
        assert len(tracer.find("solve")) == 2
        assert [depth for __, depth in tracer.walk()] == [0, 1, 1]
        assert len(tracer) == 3

    def test_error_exit_annotates_exception_type(self):
        tracer = SpanTracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("boom") as span:
                raise ValueError("nope")
        assert span.attributes["error"] == "ValueError"
        assert span.finished

    def test_out_of_order_exit_is_tolerated(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        clock.advance(1.0)
        outer.__exit__(None, None, None)  # exits through inner
        assert tracer.current is None
        assert outer.duration_s == pytest.approx(1.0)


class TestCapacity:
    def test_capacity_drops_but_still_times(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock, capacity=2)
        kept = []
        for name in ("a", "b", "c"):
            with tracer.span(name) as span:
                clock.advance(1.0)
            kept.append(span)
        assert tracer.retained == 2
        assert tracer.dropped == 1
        assert tracer.total_recorded == 3
        assert [root.name for root in tracer.roots] == ["a", "b"]
        # the dropped span still timed its region
        assert kept[2].duration_s == pytest.approx(1.0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ObservabilityError, match="capacity"):
            SpanTracer(capacity=0)


class TestNullSpan:
    def test_maybe_span_none_returns_shared_singleton(self):
        assert maybe_span(None, "anything", a=1) is NULL_SPAN
        assert maybe_span(None, "other") is NULL_SPAN

    def test_null_span_is_inert(self):
        with maybe_span(None, "x") as span:
            assert span is NULL_SPAN
            assert span.annotate(hit=True) is NULL_SPAN
        assert NULL_SPAN.duration_s == 0.0
        assert NULL_SPAN.self_s() == 0.0
        assert NULL_SPAN.attributes == {}

    def test_maybe_span_with_instrumentation_records(self):
        obs = Instrumentation(clock=FakeClock())
        with maybe_span(obs, "region", tag=1):
            pass
        (root,) = obs.spans.roots
        assert root.name == "region"
        assert root.attributes == {"tag": 1}


class TestSerialization:
    def populated(self) -> SpanTracer:
        clock = FakeClock()
        tracer = SpanTracer(clock=clock, capacity=3)
        with tracer.span("run", epochs=2):
            clock.advance(0.5)
            with tracer.span("collect"):
                clock.advance(0.25)
            with tracer.span("filter"):
                with tracer.span("beyond-capacity"):  # the 4th: dropped
                    pass
        return tracer

    def test_round_trip_preserves_tree(self):
        tracer = self.populated()
        restored = SpanTracer.from_dict(tracer.to_dict())
        assert restored.to_dict() == tracer.to_dict()
        assert restored.retained == tracer.retained
        assert restored.dropped == tracer.dropped
        (root,) = restored.roots
        assert root.name == "run"
        assert root.attributes == {"epochs": 2}
        assert root.children[0].duration_s == pytest.approx(0.25)

    def test_restored_span_cannot_be_reentered(self):
        restored = SpanTracer.from_dict(self.populated().to_dict())
        with pytest.raises(ObservabilityError, match="detached"):
            with restored.roots[0]:
                pass

    def test_open_span_serializes_with_null_end(self):
        tracer = SpanTracer(clock=FakeClock())
        span = tracer.span("open")
        span.__enter__()
        dump = tracer.to_dict()
        assert dump["roots"][0]["end_s"] is None
        restored = SpanTracer.from_dict(dump)
        assert not restored.roots[0].finished

    def test_malformed_dump_raises(self):
        with pytest.raises(ObservabilityError, match="malformed"):
            Span.from_dict({"start_s": 0.0})
        with pytest.raises(ObservabilityError, match="malformed"):
            SpanTracer.from_dict({"roots": [{"name": "x"}]})


class TestRingMode:
    """Bounded tracing for long-lived services: keep the newest
    finished trees, count what was evicted."""

    def test_rejects_unknown_mode(self):
        with pytest.raises(ObservabilityError):
            SpanTracer(mode="circular")

    def test_evicts_oldest_finished_roots_and_counts_spans(self):
        tracer = SpanTracer(clock=FakeClock(), capacity=4, mode="ring")
        for i in range(8):
            with tracer.span(f"req{i}"):
                pass
        assert [root.name for root in tracer.roots] == [
            "req4", "req5", "req6", "req7"
        ]
        assert tracer.retained == 4
        assert tracer.dropped == 4

    def test_eviction_counts_whole_subtrees(self):
        tracer = SpanTracer(clock=FakeClock(), capacity=3, mode="ring")
        with tracer.span("first"):
            with tracer.span("child"):
                pass
        with tracer.span("second"):
            pass
        with tracer.span("third"):  # evicts "first" (2 spans)
            pass
        assert [root.name for root in tracer.roots] == ["second", "third"]
        assert tracer.dropped == 2
        assert tracer.retained == 2

    def test_never_evicts_the_open_root_it_is_nested_under(self):
        tracer = SpanTracer(clock=FakeClock(), capacity=1, mode="ring")
        with tracer.span("outer"):
            # outer is open and at capacity: it cannot be evicted, so
            # the nested span falls back to block-mode dropping
            with tracer.span("inner"):
                pass
        (root,) = tracer.roots
        assert root.name == "outer"
        assert root.children == [] or root.children == ()
        assert tracer.dropped == 1
        assert root.finished  # the drop never corrupted the stack

    def test_block_mode_still_drops_newest(self):
        tracer = SpanTracer(clock=FakeClock(), capacity=2, mode="block")
        for i in range(4):
            with tracer.span(f"req{i}"):
                pass
        assert [root.name for root in tracer.roots] == ["req0", "req1"]
        assert tracer.dropped == 2

    def test_mode_and_span_ids_round_trip_through_dump(self):
        tracer = SpanTracer(clock=FakeClock(), capacity=8, mode="ring")
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        dump = tracer.to_dict()
        assert dump["mode"] == "ring"
        restored = SpanTracer.from_dict(dump)
        assert restored.mode == "ring"
        assert restored.to_dict() == dump
        # restored tracer keeps minting ids above what it loaded
        with restored.span("c") as span:
            pass
        all_ids = [span.span_id for root in restored.roots
                   for span, __ in root.walk()]
        assert len(set(all_ids)) == len(all_ids)

    def test_span_ids_are_unique_and_stable_in_dumps(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                pass
        assert a.span_id != b.span_id
        dump = tracer.to_dict()
        assert dump["roots"][0]["span_id"] == a.span_id
        assert dump["roots"][0]["children"][0]["span_id"] == b.span_id

    def test_instrumentation_passes_span_mode_through(self):
        obs = Instrumentation(span_mode="ring", span_capacity=2)
        for i in range(5):
            with obs.span(f"req{i}"):
                pass
        assert obs.spans.mode == "ring"
        assert obs.spans.dropped == 3
