"""Distributed observability: trace contexts, the telemetry
aggregator's merged views, and the live HTTP surfaces."""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    Instrumentation,
    LocalTelemetrySource,
    SlowRequestLog,
    TelemetryAggregator,
    TelemetryServer,
    TraceContext,
    adopt_trace,
    inherited_trace_id,
    new_trace_id,
    render_top,
)
from repro.obs.distributed import REQUEST_LATENCY_METRIC


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- trace context ----------------------------------------------------------


class TestTraceContext:
    def test_round_trips_through_jsonable(self):
        ctx = TraceContext(trace_id=12345, parent_span_id=7)
        assert TraceContext.from_jsonable(ctx.to_jsonable()) == ctx

    def test_rejects_zero_trace_id(self):
        with pytest.raises(ObservabilityError):
            TraceContext(trace_id=0)

    @pytest.mark.parametrize("bad", [-1, 1 << 64, 1.5, "7", None])
    def test_rejects_non_u64_fields(self, bad):
        with pytest.raises(ObservabilityError):
            TraceContext(trace_id=bad)

    @pytest.mark.parametrize(
        "payload", [[], [1], [1, 2, 3], [1, "x"], "1,2", {"trace_id": 1}]
    )
    def test_from_jsonable_rejects_malformed(self, payload):
        with pytest.raises(ObservabilityError):
            TraceContext.from_jsonable(payload)

    def test_new_trace_ids_are_nonzero_u64(self):
        ids = {new_trace_id() for __ in range(64)}
        assert len(ids) == 64  # collisions astronomically unlikely
        assert all(0 < i <= (1 << 64) - 1 for i in ids)


class TestAdoptTrace:
    def test_outermost_span_mints_and_nested_spans_inherit(self):
        obs = Instrumentation()
        with obs.span("client.request") as outer:
            ctx = adopt_trace(obs, outer)
            with obs.span("client.submit") as inner:
                nested = adopt_trace(obs, inner)
        assert ctx.trace_id == nested.trace_id
        assert nested.parent_span_id == inner.span_id
        assert outer.attributes["trace_id"] == ctx.trace_id

    def test_disabled_instrumentation_is_a_noop(self):
        from repro.obs import NULL_SPAN

        assert adopt_trace(None, NULL_SPAN) is None
        assert inherited_trace_id(None) is None

    def test_sibling_requests_get_distinct_traces(self):
        obs = Instrumentation()
        contexts = []
        for __ in range(2):
            with obs.span("client.request") as span:
                contexts.append(adopt_trace(obs, span))
        assert contexts[0].trace_id != contexts[1].trace_id


# -- slow-request exemplars -------------------------------------------------


def _finished_span(obs, duration, clock, name="service.request"):
    with obs.span(name) as span:
        clock.advance(duration)
    return span


class TestSlowRequestLog:
    def test_keeps_the_slowest_n(self):
        clock = FakeClock()
        obs = Instrumentation(clock=clock)
        log = SlowRequestLog(capacity=3)
        for duration in (0.1, 0.5, 0.2, 0.9, 0.05, 0.3):
            log.offer(_finished_span(obs, duration, clock))
        rows = log.to_dicts()
        assert [r["duration_s"] for r in rows] == pytest.approx(
            [0.9, 0.5, 0.3]
        )
        assert all(r["span"]["name"] == "service.request" for r in rows)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ObservabilityError):
            SlowRequestLog(capacity=0)

    def test_ignores_null_and_open_spans(self):
        from repro.obs import NULL_SPAN

        log = SlowRequestLog()
        log.offer(NULL_SPAN)
        obs = Instrumentation()
        span = obs.spans.span("open")  # never finished
        log.offer(span)
        assert len(log) == 0


# -- aggregation ------------------------------------------------------------


def _snapshot(shard, *, ts, requests, durations=(), clock=None, obs=None):
    """A minimal telemetry snapshot like TopKService emits."""
    obs = obs or Instrumentation(clock=clock)
    hist = obs.histogram(REQUEST_LATENCY_METRIC)
    for value in durations:
        hist.observe(value)
    return {
        "shard": shard,
        "ts": ts,
        "uptime_s": ts,
        "requests_handled": requests,
        "sessions_open": 1,
        "cache": {"hits": 3, "misses": 1},
        "energy_mj": 2.0,
        "metrics": obs.metrics.to_dict(),
        "spans": obs.spans.to_dict(),
        "exemplars": [],
    }


class TestTelemetryAggregator:
    def test_qps_from_successive_snapshot_deltas(self):
        agg = TelemetryAggregator()
        agg.ingest(_snapshot("0", ts=10.0, requests=100))
        agg.ingest(_snapshot("0", ts=20.0, requests=300))
        assert agg.qps("0") == pytest.approx(20.0)
        agg.ingest(_snapshot("1", ts=20.0, requests=40))
        # single snapshot: falls back to requests / uptime
        assert agg.qps("1") == pytest.approx(2.0)
        assert agg.fleet_qps() == pytest.approx(22.0)

    def test_fleet_histogram_merges_shards_exactly(self):
        agg = TelemetryAggregator()
        agg.ingest(
            _snapshot("0", ts=1.0, requests=3, durations=[0.01, 0.02, 0.03])
        )
        agg.ingest(
            _snapshot("1", ts=1.0, requests=2, durations=[0.5, 1.0])
        )
        fleet = agg.fleet_histogram(REQUEST_LATENCY_METRIC)
        assert fleet.count == 5
        assert fleet.min == pytest.approx(0.01)
        assert fleet.max == pytest.approx(1.0)
        # the p99 must land in the slow shard's territory
        assert fleet.quantile(99) > 0.4

    def test_top_rows_have_shard_and_fleet_lines(self):
        agg = TelemetryAggregator()
        agg.ingest(_snapshot("0", ts=5.0, requests=10, durations=[0.01]))
        agg.ingest(_snapshot("1", ts=5.0, requests=30, durations=[0.02]))
        rows = agg.top_rows()
        assert [r["shard"] for r in rows] == ["0", "1", "fleet"]
        fleet = rows[-1]
        assert fleet["requests"] == 40
        assert fleet["cache_hit_pct"] == pytest.approx(75.0)
        assert fleet["p99_ms"] is not None

    def test_exemplars_are_tagged_and_sorted(self):
        agg = TelemetryAggregator()
        slow = _snapshot("1", ts=1.0, requests=1)
        slow["exemplars"] = [{"duration_s": 0.9, "span": {"name": "a"}}]
        fast = _snapshot("0", ts=1.0, requests=1)
        fast["exemplars"] = [{"duration_s": 0.1, "span": {"name": "b"}}]
        agg.ingest(slow)
        agg.ingest(fast)
        rows = agg.exemplars()
        assert [r["shard"] for r in rows] == ["1", "0"]
        assert rows[0]["duration_s"] == 0.9

    def test_prometheus_exposition_has_per_shard_gauges(self):
        agg = TelemetryAggregator()
        agg.ingest(_snapshot("0", ts=4.0, requests=8, durations=[0.01] * 5))
        text = agg.prometheus()
        assert '# TYPE repro_shard_qps gauge' in text
        assert 'repro_shard_qps{shard="0"} 2.0' in text
        assert 'repro_shard_p99_seconds{shard="0"}' in text
        assert 'repro_service_request_seconds{quantile="0.99"}' in text
        assert 'repro_service_request_seconds_count 5' in text

    def test_chrome_trace_merges_lanes_and_propagates_trace_ids(self):
        clock = FakeClock(100.0)
        client = Instrumentation(clock=clock)
        with client.span("client.request") as span:
            ctx = adopt_trace(client, span)
            clock.advance(0.5)
        worker = Instrumentation(clock=clock)
        with worker.span("service.request", trace_id=ctx.trace_id):
            with worker.span("solve"):
                clock.advance(0.25)
        agg = TelemetryAggregator()
        snapshot = _snapshot("2", ts=1.0, requests=1, obs=worker)
        agg.ingest(snapshot)
        doc = agg.chrome_trace(client=client)
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M"}
        assert names == {"client", "shard 2"}
        stitched = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X"
            and e.get("args", {}).get("trace_id") == ctx.trace_id
        ]
        # the un-annotated "solve" child inherits the root's trace id
        assert {e["name"] for e in stitched} == {
            "client.request", "service.request", "solve"
        }
        assert {e["pid"] for e in stitched} == {1, 2}
        assert all(e["ts"] >= 0 for e in stitched)


class TestRenderTop:
    def test_renders_aligned_rows_with_dashes_for_missing(self):
        rows = [
            {"shard": "0", "qps": 12.5, "p50_ms": 1.0, "p99_ms": 9.0,
             "requests": 100, "sessions": 2, "cache_hit_pct": 50.0,
             "energy_mj": 1.5, "dropped_spans": 0},
            {"shard": "fleet", "qps": 12.5, "p50_ms": None, "p99_ms": None,
             "requests": 100, "sessions": 2, "cache_hit_pct": None,
             "energy_mj": 1.5, "dropped_spans": 0},
        ]
        text = render_top(rows)
        lines = text.splitlines()
        assert "qps" in lines[0] and "p99(ms)" in lines[0]
        assert len({len(line) for line in lines}) == 1  # aligned
        assert lines[-1].strip().startswith("fleet")
        assert " - " in lines[-1] or lines[-1].rstrip().endswith("-")


# -- HTTP surface -----------------------------------------------------------


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read()


class TestTelemetryServer:
    @pytest.fixture()
    def live(self):
        agg = TelemetryAggregator()
        agg.ingest(_snapshot("0", ts=2.0, requests=4, durations=[0.01]))
        with TelemetryServer(lambda: agg) as server:
            yield server

    def test_metrics_route_serves_prometheus(self, live):
        status, body = _get(live.url("/metrics"))
        assert status == 200
        assert b"repro_shard_qps" in body

    def test_json_route_serves_dashboard_rows(self, live):
        status, body = _get(live.url("/json"))
        assert status == 200
        payload = json.loads(body)
        assert payload["shards"] == ["0"]
        assert payload["rows"][-1]["shard"] == "fleet"

    def test_trace_route_serves_chrome_json(self, live):
        status, body = _get(live.url("/trace"))
        assert status == 200
        assert "traceEvents" in json.loads(body)

    def test_exemplars_route_serves_list(self, live):
        status, body = _get(live.url("/exemplars"))
        assert status == 200
        assert isinstance(json.loads(body), list)

    def test_unknown_route_is_404(self, live):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(live.url("/nope"))
        assert excinfo.value.code == 404

    def test_collect_failure_is_a_500_not_a_crash(self):
        def explode():
            raise RuntimeError("backend gone")

        with TelemetryServer(explode) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url("/json"))
            assert excinfo.value.code == 500
            # and the server thread survived to answer again
            with pytest.raises(urllib.error.HTTPError):
                _get(server.url("/metrics"))


class TestLocalTelemetrySource:
    def test_snapshots_one_service_as_shard_zero(self):
        from repro.service.server import TopKService

        service = TopKService(instrumentation=Instrumentation())
        source = LocalTelemetrySource(service)
        agg = source()
        assert agg.shards == ["0"]
        assert agg.snapshot("0")["requests_handled"] == 0
