"""Tests for the Chrome-trace / Prometheus / flame exporters."""

import json

import pytest

from repro.obs import (
    Instrumentation,
    chrome_trace,
    chrome_trace_json,
    prometheus_text,
    render_flame,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def traced_run() -> tuple[Instrumentation, FakeClock]:
    clock = FakeClock(100.0)
    obs = Instrumentation(clock=clock)
    with obs.span("run", epochs=2):
        clock.advance(0.010)
        with obs.span("plan", planner="lp-lf"):
            clock.advance(0.030)
        obs.event("plan_installed", planner="lp-lf", cost=1.5,
                  detail={"not": "scalar"})
        with obs.span("collect"):
            clock.advance(0.060)
    return obs, clock


class TestChromeTrace:
    def test_document_shape(self):
        obs, __ = traced_run()
        doc = chrome_trace(obs)
        assert doc["displayTimeUnit"] == "ms"
        phases = {event["ph"] for event in doc["traceEvents"]}
        assert phases == {"M", "X", "i"}

    def test_spans_become_relative_complete_events(self):
        obs, __ = traced_run()
        events = {
            e["name"]: e
            for e in chrome_trace(obs)["traceEvents"]
            if e["ph"] == "X"
        }
        # timestamps are microseconds relative to the earliest span
        assert events["run"]["ts"] == pytest.approx(0.0)
        assert events["run"]["dur"] == pytest.approx(100_000.0)
        assert events["plan"]["ts"] == pytest.approx(10_000.0)
        assert events["plan"]["dur"] == pytest.approx(30_000.0)
        assert events["collect"]["ts"] == pytest.approx(40_000.0)
        assert events["plan"]["args"] == {"planner": "lp-lf"}
        assert all(e["pid"] == 1 and e["tid"] == 1 for e in events.values())

    def test_instant_events_carry_scalar_args_only(self):
        obs, __ = traced_run()
        (instant,) = [
            e for e in chrome_trace(obs)["traceEvents"] if e["ph"] == "i"
        ]
        assert instant["name"] == "plan_installed"
        assert instant["s"] == "t"
        assert instant["args"] == {"planner": "lp-lf", "cost": 1.5}
        assert instant["ts"] == pytest.approx(40_000.0)

    def test_json_form_parses(self):
        obs, __ = traced_run()
        doc = json.loads(chrome_trace_json(obs))
        assert doc["traceEvents"][0] == {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": "repro"},
        }

    def test_empty_instrumentation_exports(self):
        doc = chrome_trace(Instrumentation())
        assert [e["ph"] for e in doc["traceEvents"]] == ["M"]


class TestPrometheusText:
    def test_counters_gauges_and_summaries(self):
        obs = Instrumentation()
        obs.counter("lp.solves").inc(3)
        obs.gauge("plan.static_cost_mj.lp-lf").set(12.5)
        hist = obs.histogram("lp.solve_seconds.prospector-lp-lf")
        for value in (0.25, 0.5, 0.25):
            hist.observe(value)
        text = prometheus_text(obs)
        assert "# TYPE repro_lp_solves_total counter" in text
        assert "repro_lp_solves_total 3.0" in text
        assert "# TYPE repro_plan_static_cost_mj_lp_lf gauge" in text
        assert "repro_plan_static_cost_mj_lp_lf 12.5" in text
        metric = "repro_lp_solve_seconds_prospector_lp_lf"
        assert f"# TYPE {metric} summary" in text
        assert f'{metric}{{quantile="0.5"}} 0.25' in text
        assert f"{metric}_sum 1.0" in text
        assert f"{metric}_count 3" in text
        assert text.endswith("\n")

    def test_names_are_sanitized(self):
        obs = Instrumentation()
        obs.counter("9-weird metric!").inc()
        text = prometheus_text(obs, prefix="")
        assert "_9_weird_metric__total 1.0" in text

    def test_output_is_sorted_and_diff_stable(self):
        obs = Instrumentation()
        obs.counter("zeta").inc()
        obs.counter("alpha").inc()
        text = prometheus_text(obs)
        assert text.index("repro_alpha_total") < text.index("repro_zeta_total")

    def test_empty_registry_is_empty_string(self):
        assert prometheus_text(Instrumentation()) == ""


class TestRenderFlame:
    def test_tree_with_shares_and_bars(self):
        obs, __ = traced_run()
        text = render_flame(obs)
        lines = text.splitlines()
        assert lines[0].startswith("run (epochs=2)")
        assert "100.0%" in lines[0]
        assert "|- plan (planner=lp-lf)" in lines[1]
        assert "30.0%" in lines[1]
        assert "`- collect" in lines[2]
        assert "60.0%" in lines[2]
        assert "#" in lines[1]

    def test_no_spans_placeholder(self):
        assert render_flame(Instrumentation()) == "(no spans recorded)"

    def test_dropped_footer(self):
        clock = FakeClock()
        obs = Instrumentation(clock=clock, span_capacity=1)
        with obs.span("kept"):
            clock.advance(1.0)
        with obs.span("lost"):
            pass
        assert "dropped 1 of 2 spans" in render_flame(obs)

    def test_duration_units(self):
        clock = FakeClock()
        obs = Instrumentation(clock=clock)
        with obs.span("slow"):
            clock.advance(2.5)
        with obs.span("fast"):
            clock.advance(0.0005)
        text = render_flame(obs)
        assert "2.500s" in text
        assert "500us" in text
