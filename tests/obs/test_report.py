"""Tests for the ASCII/JSON reporters."""

from repro.obs import Instrumentation, from_json, render_report, to_json


def populated() -> Instrumentation:
    obs = Instrumentation(trace_capacity=2)
    obs.counter("engine.queries").inc(7)
    obs.gauge("plan.static_cost_mj.lp-lf").set(12.5)
    obs.histogram("lp.solve_seconds.prospector-lp-lf").observe(0.02)
    for __ in range(3):
        obs.event("lp_solve", model="prospector-lp-lf")
    return obs


class TestRender:
    def test_sections_and_names_present(self):
        text = render_report(populated(), title="demo")
        assert "demo" in text
        assert "counters" in text
        assert "engine.queries" in text
        assert "plan.static_cost_mj.lp-lf" in text
        assert "lp.solve_seconds.prospector-lp-lf" in text
        assert "lp_solve" in text

    def test_reports_dropped_events(self):
        text = render_report(populated())
        assert "dropped 1 of 3 events" in text

    def test_empty_instrumentation_renders(self):
        assert "(no metrics recorded)" in render_report(Instrumentation())


class TestJson:
    def test_round_trip_preserves_report(self):
        obs = populated()
        restored = from_json(to_json(obs))
        assert render_report(restored) == render_report(obs)
