"""Tests for the ASCII/JSON reporters."""

from repro.obs import Instrumentation, from_json, render_report, to_json


def populated() -> Instrumentation:
    obs = Instrumentation(trace_capacity=2)
    obs.counter("engine.queries").inc(7)
    obs.gauge("plan.static_cost_mj.lp-lf").set(12.5)
    obs.histogram("lp.solve_seconds.prospector-lp-lf").observe(0.02)
    for __ in range(3):
        obs.event("lp_solve", model="prospector-lp-lf")
    return obs


class TestRender:
    def test_sections_and_names_present(self):
        text = render_report(populated(), title="demo")
        assert "demo" in text
        assert "counters" in text
        assert "engine.queries" in text
        assert "plan.static_cost_mj.lp-lf" in text
        assert "lp.solve_seconds.prospector-lp-lf" in text
        assert "lp_solve" in text

    def test_reports_dropped_events(self):
        text = render_report(populated())
        assert "dropped 1 of 3 events" in text

    def test_empty_instrumentation_renders(self):
        assert "(no metrics recorded)" in render_report(Instrumentation())


class TestJson:
    def test_round_trip_preserves_report(self):
        obs = populated()
        restored = from_json(to_json(obs))
        assert render_report(restored) == render_report(obs)

    def test_round_trip_is_dict_exact(self):
        obs = populated()
        with obs.span("run", epochs=2):
            with obs.span("collect"):
                pass
        restored = from_json(to_json(obs))
        assert restored.to_dict() == obs.to_dict()

    def test_round_trip_keeps_unobserved_histogram_bounds(self):
        obs = Instrumentation()
        obs.histogram("lp.solve_seconds.never-observed")
        restored = from_json(to_json(obs))
        hist = restored.metrics.histograms["lp.solve_seconds.never-observed"]
        assert hist.count == 0
        assert hist.to_dict()["min"] is None
        assert hist.to_dict()["max"] is None
        # and it keeps working after restore
        hist.observe(0.5)
        assert hist.to_dict()["min"] == 0.5

    def test_round_trip_keeps_dropped_event_count(self):
        obs = populated()  # trace capacity 2, 3 events -> 1 dropped
        restored = from_json(to_json(obs))
        assert restored.trace.dropped == obs.trace.dropped == 1
        assert len(list(restored.trace)) == 2

    def test_round_trip_keeps_span_tree_and_dropped_spans(self):
        obs = Instrumentation(span_capacity=2)
        with obs.span("run", planner="lp-lf"):
            with obs.span("solve"):
                pass
            with obs.span("beyond-capacity"):
                pass
        restored = from_json(to_json(obs))
        assert restored.spans.to_dict() == obs.spans.to_dict()
        assert restored.spans.dropped == 1
        (root,) = restored.spans.roots
        assert root.name == "run"
        assert root.attributes == {"planner": "lp-lf"}
        assert [child.name for child in root.children] == ["solve"]
