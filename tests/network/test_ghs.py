"""Tests for the simulated distributed MST construction (citation [5])."""

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.network.ghs import build_mst


def random_positions(rng, n, width=100.0):
    return [tuple(p) for p in rng.uniform(0, width, size=(n, 2))]


def networkx_mst_weight(positions, radio_range):
    graph = nx.Graph()
    graph.add_nodes_from(range(len(positions)))
    for a in range(len(positions)):
        for b in range(a + 1, len(positions)):
            d = math.dist(positions[a], positions[b])
            if d <= radio_range:
                graph.add_edge(a, b, weight=d)
    if not nx.is_connected(graph):
        return None
    return nx.minimum_spanning_tree(graph).size(weight="weight")


class TestBuildMST:
    def test_trivial_sizes(self):
        outcome = build_mst([(0.0, 0.0)], radio_range=1.0)
        assert outcome.topology.n == 1
        assert outcome.messages == 0
        with pytest.raises(TopologyError):
            build_mst([], radio_range=1.0)

    def test_two_nodes(self):
        outcome = build_mst([(0.0, 0.0), (3.0, 4.0)], radio_range=6.0)
        assert outcome.mst_weight == pytest.approx(5.0)
        assert outcome.topology.parent(1) == 0
        assert outcome.rounds == 1

    def test_matches_networkx_weight(self, rng):
        positions = random_positions(rng, 40)
        reference = networkx_mst_weight(positions, 40.0)
        assert reference is not None
        outcome = build_mst(positions, radio_range=40.0)
        assert outcome.mst_weight == pytest.approx(reference)

    def test_result_is_spanning_tree(self, rng):
        positions = random_positions(rng, 30)
        outcome = build_mst(positions, radio_range=50.0)
        topology = outcome.topology
        assert topology.n == 30
        assert topology.num_edges == 29
        # every tree edge respects the radio range
        for edge in topology.edges:
            d = math.dist(
                topology.positions[edge],
                topology.positions[topology.parent(edge)],
            )
            assert d <= 50.0 + 1e-9

    def test_disconnected_rejected(self):
        positions = [(0.0, 0.0), (1.0, 0.0), (500.0, 500.0)]
        with pytest.raises(TopologyError, match="disconnected"):
            build_mst(positions, radio_range=5.0)

    def test_logarithmic_rounds(self, rng):
        """Fragment count at least halves per round (the GHS bound)."""
        positions = random_positions(rng, 60)
        outcome = build_mst(positions, radio_range=40.0)
        assert outcome.rounds <= math.ceil(math.log2(60)) + 1
        for before, after in zip(
            outcome.fragments_per_round, outcome.fragments_per_round[1:]
        ):
            assert after <= math.ceil(before / 2) + before // 2  # halving-ish
        assert outcome.fragments_per_round[0] == 60

    def test_message_count_reasonable(self, rng):
        """Messages stay within the O(E log n + n log n) regime."""
        positions = random_positions(rng, 50)
        outcome = build_mst(positions, radio_range=45.0)
        edges = sum(
            1
            for a in range(50)
            for b in range(a + 1, 50)
            if math.dist(positions[a], positions[b]) <= 45.0
        )
        bound = 4 * (edges + 50) * (math.ceil(math.log2(50)) + 1)
        assert 0 < outcome.messages <= bound

    def test_deterministic(self, rng):
        positions = random_positions(rng, 25)
        first = build_mst(positions, radio_range=60.0)
        second = build_mst(positions, radio_range=60.0)
        assert first.topology.same_structure(second.topology)
        assert first.messages == second.messages


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=25),
       st.integers(min_value=0, max_value=2**32 - 1))
def test_mst_weight_property(n, seed):
    """The simulated distributed MST always matches networkx's MST."""
    rng = np.random.default_rng(seed)
    positions = random_positions(rng, n, width=30.0)
    radio_range = 50.0  # dense: always connected within a 30x30 field
    reference = networkx_mst_weight(positions, radio_range)
    outcome = build_mst(positions, radio_range=radio_range)
    assert outcome.mst_weight == pytest.approx(reference)
    assert outcome.topology.n == n
