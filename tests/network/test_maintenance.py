"""Tests for permanent-failure topology maintenance (paper §4.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.network.builder import line_topology, random_topology
from repro.network.maintenance import remap_readings, remove_node
from repro.network.topology import Topology
from tests.conftest import tree_strategy


class TestRemoveNode:
    def test_cannot_remove_root_or_unknown(self, small_tree):
        with pytest.raises(TopologyError, match="root"):
            remove_node(small_tree, 0)
        with pytest.raises(TopologyError, match="not in"):
            remove_node(small_tree, 99)
        with pytest.raises(TopologyError):
            remove_node(Topology([-1]), 0)

    def test_leaf_removal(self, small_tree):
        topology, id_map = remove_node(small_tree, 3)
        assert topology.n == 6
        assert 3 not in id_map
        # node 4 (old) keeps its parent 1
        assert topology.parent(id_map[4]) == id_map[1]

    def test_internal_removal_grandparents_children(self, small_tree):
        # removing node 1 re-attaches 3 and 4 at the root
        topology, id_map = remove_node(small_tree, 1)
        assert topology.parent(id_map[3]) == 0
        assert topology.parent(id_map[4]) == 0
        assert topology.parent(id_map[6]) == id_map[5]

    def test_chain_removal_preserves_order(self):
        chain = line_topology(5)
        topology, id_map = remove_node(chain, 2)
        assert topology.parent(id_map[3]) == id_map[1]
        assert topology.parent(id_map[4]) == id_map[3]
        assert topology.height == 3

    def test_nearest_reattachment_uses_positions(self):
        # a "Y": orphan 3 is physically nearer node 2 than the root
        positions = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (2.0, 1.0)]
        topology = Topology([-1, 0, 0, 1], positions=positions)
        adjusted, id_map = remove_node(topology, 1, radio_range=1.5)
        assert adjusted.parent(id_map[3]) == id_map[2]

    def test_nearest_falls_back_to_grandparent(self):
        positions = [(0.0, 0.0), (1.0, 0.0), (50.0, 50.0), (2.0, 0.0)]
        topology = Topology([-1, 0, 0, 1], positions=positions)
        adjusted, id_map = remove_node(topology, 1, radio_range=0.1)
        assert adjusted.parent(id_map[3]) == 0  # nothing in range

    def test_positions_carried_over(self, rng):
        topology = random_topology(20, rng=rng, radio_range=40.0)
        adjusted, id_map = remove_node(topology, 5)
        for old, new in id_map.items():
            assert adjusted.positions[new] == topology.positions[old]


class TestRemapReadings:
    def test_projection(self):
        id_map = {0: 0, 2: 1, 3: 2}
        assert remap_readings([9.0, 8.0, 7.0, 6.0], id_map, 3) == [9.0, 7.0, 6.0]


@settings(max_examples=80, deadline=None)
@given(tree_strategy(min_nodes=3, max_nodes=20), st.data())
def test_removal_invariants(topology, data):
    dead = data.draw(st.integers(min_value=1, max_value=topology.n - 1))
    adjusted, id_map = remove_node(topology, dead)
    # one fewer node, contiguous ids, all survivors mapped
    assert adjusted.n == topology.n - 1
    assert sorted(id_map.values()) == list(range(adjusted.n))
    assert dead not in id_map
    # nodes keep their parent unless orphaned, and orphans move up
    for old, new in id_map.items():
        if old == 0:
            continue
        old_parent = topology.parent(old)
        if old_parent == dead:
            assert adjusted.parent(new) == id_map[topology.parent(dead)]
        else:
            assert adjusted.parent(new) == id_map[old_parent]


class TestEngineIntegration:
    def test_engine_survives_permanent_failure(self, rng):
        from repro.datagen.gaussian import random_gaussian_field
        from repro.network.energy import EnergyModel
        from repro.planners.lp_no_lf import LPNoLFPlanner
        from repro.query.engine import EngineConfig, TopKEngine

        topology = random_topology(25, rng=rng, radio_range=35.0)
        field = random_gaussian_field(25, rng)
        engine = TopKEngine(
            topology,
            EnergyModel.mica2(),
            k=4,
            planner=LPNoLFPlanner(),
            config=EngineConfig(budget_mj=40.0),
            rng=np.random.default_rng(0),
        )
        for __ in range(8):
            engine.feed_sample(field.sample(rng))
        engine.ensure_plan()

        id_map = engine.handle_permanent_failure(7)
        assert engine.topology.n == 24
        assert engine.plan is None
        assert len(engine.window) == 8  # samples migrated

        # querying still works on the shrunken network
        survivors_reading = [
            field.sample(rng)[old] for old in sorted(id_map, key=id_map.get)
        ]
        result = engine.query(survivors_reading)
        assert 0.0 <= result.accuracy <= 1.0


def test_mutual_adoption_cycle_prevented():
    """Regression: two orphan subtrees physically closest to *each
    other* must not adopt into one another (that detaches both)."""
    from repro.network.topology import Topology

    # dead node 1 has two children, 2 and 3, sitting side by side far
    # from everyone else
    positions = [(0.0, 0.0), (10.0, 0.0), (20.0, 0.0), (20.0, 1.0)]
    topology = Topology([-1, 0, 1, 1], positions=positions)
    adjusted, id_map = remove_node(topology, 1, radio_range=100.0)
    # both orphans must re-root outside each other's subtrees
    assert adjusted.parent(id_map[2]) == 0
    assert adjusted.parent(id_map[3]) == 0


@settings(max_examples=60, deadline=None)
@given(tree_strategy(min_nodes=3, max_nodes=20),
       st.integers(min_value=0, max_value=2**32 - 1),
       st.data())
def test_removal_with_positions_stays_connected(topology, seed, data):
    """Position-aware re-attachment always yields a valid rooted tree."""
    rng = np.random.default_rng(seed)
    positions = [tuple(p) for p in rng.uniform(0, 50, size=(topology.n, 2))]
    positioned = Topology(
        [topology.parent(i) for i in topology.nodes], positions=positions
    )
    dead = data.draw(st.integers(min_value=1, max_value=topology.n - 1))
    adjusted, id_map = remove_node(positioned, dead, radio_range=30.0)
    assert adjusted.n == topology.n - 1  # Topology() validated rootedness
