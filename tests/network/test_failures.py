"""Unit tests for the link failure model."""

import numpy as np
import pytest

from repro.network.builder import line_topology
from repro.network.failures import LinkFailureModel


class TestLinkFailureModel:
    def test_defaults_are_reliable(self):
        model = LinkFailureModel()
        assert model.probability(3) == 0.0
        assert model.reroute_cost(3) == 0.0
        assert model.expected_penalty(3) == 0.0

    def test_uniform_constructor(self):
        topo = line_topology(4)
        model = LinkFailureModel.uniform(topo, probability=0.1, reroute_extra_mj=5.0)
        for edge in topo.edges:
            assert model.probability(edge) == pytest.approx(0.1)
            assert model.expected_penalty(edge) == pytest.approx(0.5)

    def test_random_constructor_within_bounds(self):
        topo = line_topology(10)
        model = LinkFailureModel.random(
            topo, np.random.default_rng(0), max_probability=0.3
        )
        for edge in topo.edges:
            assert 0.0 <= model.probability(edge) <= 0.3

    def test_record_failure_moves_estimate(self):
        model = LinkFailureModel()
        for __ in range(50):
            model.record_failure(1, failed=True)
        assert model.probability(1) > 0.8
        for __ in range(100):
            model.record_failure(1, failed=False)
        assert model.probability(1) < 0.1

    def test_sample_failure_statistics(self):
        topo = line_topology(2)
        model = LinkFailureModel.uniform(topo, probability=0.25, reroute_extra_mj=1.0)
        rng = np.random.default_rng(7)
        draws = [model.sample_failure(1, rng) for __ in range(4000)]
        assert 0.2 < np.mean(draws) < 0.3

    def test_sample_failure_never_fires_on_reliable_edges(self):
        model = LinkFailureModel()
        rng = np.random.default_rng(7)
        assert not any(model.sample_failure(1, rng) for __ in range(100))
