"""Unit and property tests for the tree topology."""

import pytest
from hypothesis import given, settings

from repro.errors import TopologyError
from repro.network.topology import Topology, validate_readings
from tests.conftest import tree_strategy


class TestConstruction:
    def test_single_node(self):
        t = Topology([-1])
        assert t.n == 1
        assert t.root == 0
        assert t.edges == []
        assert t.height == 0

    def test_rejects_empty(self):
        with pytest.raises(TopologyError):
            Topology([])

    def test_rejects_rooted_elsewhere(self):
        with pytest.raises(TopologyError, match="root"):
            Topology([1, -1])

    def test_rejects_self_parent(self):
        with pytest.raises(TopologyError, match="own parent"):
            Topology([-1, 1])

    def test_rejects_out_of_range_parent(self):
        with pytest.raises(TopologyError, match="out-of-range"):
            Topology([-1, 7])

    def test_rejects_positions_mismatch(self):
        with pytest.raises(TopologyError, match="positions"):
            Topology([-1, 0], positions=[(0, 0)])

    def test_from_parent_map(self):
        t = Topology.from_parent_map({1: 0, 2: 0, 3: 1})
        assert t.parent(3) == 1
        assert t.children(0) == (1, 2)

    def test_from_parent_map_missing_parent(self):
        with pytest.raises(TopologyError, match="no parent"):
            Topology.from_parent_map({2: 0})

    def test_from_parent_map_rejects_reparented_root(self):
        with pytest.raises(TopologyError, match="root"):
            Topology.from_parent_map({0: 1, 1: 0})


class TestAccessors:
    def test_small_tree_shape(self, small_tree):
        assert small_tree.parent(0) == -1
        assert small_tree.children(1) == (3, 4)
        assert small_tree.depth(6) == 3
        assert small_tree.height == 3
        assert small_tree.subtree_size(1) == 3
        assert small_tree.subtree_size(2) == 3
        assert small_tree.subtree_size(0) == 7
        assert small_tree.is_leaf(3)
        assert not small_tree.is_leaf(2)
        assert small_tree.num_edges == 6
        assert len(small_tree) == 7
        assert sorted(small_tree.leaves()) == [3, 4, 6]

    def test_ancestors_includes_self_by_default(self, small_tree):
        assert small_tree.ancestors(6) == [6, 5, 2, 0]
        assert small_tree.ancestors(6, include_self=False) == [5, 2, 0]
        assert small_tree.ancestors(0) == [0]

    def test_path_edges(self, small_tree):
        assert small_tree.path_edges(6) == [6, 5, 2]
        assert small_tree.path_edges(0) == []

    def test_descendants(self, small_tree):
        assert sorted(small_tree.descendants(1)) == [1, 3, 4]
        assert small_tree.descendants(3) == [3]
        assert sorted(small_tree.descendants(0, include_self=False)) == [1, 2, 3, 4, 5, 6]

    def test_descendant_sets_match_descendants(self, small_tree):
        sets = small_tree.descendant_sets()
        for node in small_tree.nodes:
            assert sets[node] == frozenset(small_tree.descendants(node))

    def test_is_ancestor(self, small_tree):
        assert small_tree.is_ancestor(0, 6)
        assert small_tree.is_ancestor(6, 6)
        assert not small_tree.is_ancestor(1, 6)

    def test_child_toward(self, small_tree):
        assert small_tree.child_toward(0, 6) == 2
        assert small_tree.child_toward(2, 6) == 5
        with pytest.raises(TopologyError):
            small_tree.child_toward(1, 6)
        with pytest.raises(TopologyError):
            small_tree.child_toward(6, 6)

    def test_sibling_children(self, small_tree):
        assert small_tree.sibling_children(6, 0) == [1]
        assert small_tree.sibling_children(3, 1) == [4]
        # ancestor == node: all children
        assert small_tree.sibling_children(1, 1) == [3, 4]

    def test_same_structure(self, small_tree):
        assert small_tree.same_structure(Topology([-1, 0, 0, 1, 1, 2, 5]))
        assert not small_tree.same_structure(Topology([-1, 0]))


class TestWalks:
    def test_post_order_children_first(self, small_tree):
        order = small_tree.post_order()
        position = {node: i for i, node in enumerate(order)}
        for node in small_tree.nodes:
            for child in small_tree.children(node):
                assert position[child] < position[node]
        assert order[-1] == 0

    def test_pre_order_parents_first(self, small_tree):
        order = small_tree.pre_order()
        position = {node: i for i, node in enumerate(order)}
        for node in small_tree.nodes:
            if node != 0:
                assert position[small_tree.parent(node)] < position[node]
        assert order[0] == 0


class TestValidateReadings:
    def test_accepts_matching_length(self, small_tree):
        assert validate_readings(small_tree, range(7)) == [float(i) for i in range(7)]

    def test_rejects_wrong_length(self, small_tree):
        with pytest.raises(TopologyError, match="length"):
            validate_readings(small_tree, [1.0])


@settings(max_examples=60, deadline=None)
@given(tree_strategy(max_nodes=25))
def test_tree_invariants(topology):
    # every node reachable exactly once; sizes and depths consistent
    assert len(topology.post_order()) == topology.n
    assert set(topology.post_order()) == set(topology.nodes)
    assert topology.subtree_size(topology.root) == topology.n
    total = sum(topology.subtree_size(leaf) for leaf in topology.leaves())
    assert total == len(topology.leaves())  # leaves have size exactly 1
    for node in topology.nodes:
        # anc/desc duality
        for anc in topology.ancestors(node):
            assert node in topology.descendants(anc)
        assert topology.depth(node) == len(topology.path_edges(node))
        expected = 1 + sum(
            topology.subtree_size(c) for c in topology.children(node)
        )
        assert topology.subtree_size(node) == expected
