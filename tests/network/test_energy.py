"""Unit tests for the energy model."""

import pytest

from repro.network.energy import EnergyModel


class TestEnergyModel:
    def test_per_byte_derivation(self):
        model = EnergyModel(sending_mw=60.0, receiving_mw=30.0, byte_rate=3000.0)
        assert model.per_byte_mj == pytest.approx(0.03)

    def test_per_value(self):
        model = EnergyModel(
            sending_mw=60.0, receiving_mw=30.0, byte_rate=3000.0, value_bytes=4
        )
        assert model.per_value_mj == pytest.approx(0.12)

    def test_message_cost_structure(self, energy):
        empty = energy.message_cost(0)
        assert empty == pytest.approx(energy.per_message_mj)
        one = energy.message_cost(1)
        assert one == pytest.approx(
            energy.per_message_mj + energy.per_value_mj
        )
        # linear in the payload
        assert energy.message_cost(5) - energy.message_cost(4) == pytest.approx(
            energy.per_value_mj
        )

    def test_message_cost_extra_bytes(self, energy):
        base = energy.message_cost(2)
        assert energy.message_cost(2, extra_bytes=10) == pytest.approx(
            base + 10 * energy.per_byte_mj
        )

    def test_message_cost_rejects_negative(self, energy):
        with pytest.raises(ValueError):
            energy.message_cost(-1)

    def test_broadcast_cheaper_than_unicast(self, energy):
        assert energy.broadcast_cost() < energy.message_cost(0)

    def test_mica2_per_message_dominates_per_byte(self):
        """The paper's observation that motivates approximation: merely
        contacting a node costs a lot regardless of payload size."""
        model = EnergyModel.mica2()
        assert model.per_message_mj > 10 * model.per_byte_mj

    def test_uniform_helper(self):
        model = EnergyModel.uniform(per_message_mj=2.0, per_value_mj=0.5)
        assert model.per_message_mj == 2.0
        assert model.per_value_mj == pytest.approx(0.5)
        assert model.message_cost(3) == pytest.approx(2.0 + 1.5)

    def test_frozen(self, energy):
        with pytest.raises(AttributeError):
            energy.per_message_mj = 0.0
