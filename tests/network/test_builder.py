"""Unit tests for topology builders."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.network.builder import (
    balanced_tree,
    grid_topology,
    line_topology,
    nearest_neighbor_tree,
    random_topology,
    star_topology,
    zone_members,
    zone_relays,
    zoned_topology,
)


class TestRandomTopology:
    def test_shape_and_positions(self, rng):
        t = random_topology(50, rng=rng)
        assert t.n == 50
        assert t.positions is not None and len(t.positions) == 50
        # root at the rectangle center by default
        assert t.positions[0] == (50.0, 50.0)

    def test_min_hop_property(self, rng):
        """Every node's tree depth equals its BFS hop distance in the
        radio graph (the paper's 'as few hops as possible')."""
        t = random_topology(40, rng=rng, radio_range=30.0)
        positions = t.positions
        range_sq = 30.0**2

        def neighbors(a):
            ax, ay = positions[a]
            for b in range(t.n):
                if b != a:
                    bx, by = positions[b]
                    if (ax - bx) ** 2 + (ay - by) ** 2 <= range_sq:
                        yield b

        hops = {0: 0}
        frontier = [0]
        while frontier:
            nxt = []
            for u in frontier:
                for v in neighbors(u):
                    if v not in hops:
                        hops[v] = hops[u] + 1
                        nxt.append(v)
            frontier = nxt
        for node in t.nodes:
            assert t.depth(node) == hops[node]

    def test_edges_respect_radio_range(self, rng):
        t = random_topology(40, rng=rng, radio_range=22.0)
        for edge in t.edges:
            (x1, y1) = t.positions[edge]
            (x2, y2) = t.positions[t.parent(edge)]
            assert (x1 - x2) ** 2 + (y1 - y2) ** 2 <= 22.0**2 + 1e-9

    def test_impossible_range_raises(self, rng):
        with pytest.raises(TopologyError, match="connected"):
            random_topology(30, radio_range=0.5, rng=rng, max_attempts=3)

    def test_needs_positive_node_count(self, rng):
        with pytest.raises(TopologyError):
            random_topology(0, rng=rng)

    def test_deterministic_given_seed(self):
        a = random_topology(30, rng=np.random.default_rng(5))
        b = random_topology(30, rng=np.random.default_rng(5))
        assert a.same_structure(b)


class TestDeterministicShapes:
    def test_line(self):
        t = line_topology(4)
        assert t.height == 3
        assert t.parent(3) == 2

    def test_star(self):
        t = star_topology(6)
        assert t.height == 1
        assert len(t.children(0)) == 5

    def test_balanced(self):
        t = balanced_tree(branching=2, depth=3)
        assert t.n == 15
        assert t.height == 3
        assert all(len(t.children(n)) in (0, 2) for n in t.nodes)

    def test_balanced_rejects_bad_args(self):
        with pytest.raises(TopologyError):
            balanced_tree(0, 2)

    def test_grid(self):
        t = grid_topology(3, 4)
        assert t.n == 12
        # min-hop from corner root: manhattan distance
        assert t.depth(11) == (11 % 4) + (11 // 4)

    def test_nearest_neighbor_tree(self):
        t = nearest_neighbor_tree([(0, 0), (1, 0), (2, 0), (10, 0)])
        assert t.parent(1) == 0
        assert t.parent(2) == 1
        assert t.parent(3) == 2

    def test_nearest_neighbor_rejects_empty(self):
        with pytest.raises(TopologyError):
            nearest_neighbor_tree([])


class TestZonedTopology:
    def test_structure(self):
        z, size, hops = 3, 4, 2
        t = zoned_topology(z, size, relay_hops=hops)
        assert t.n == 1 + z * (hops + size)
        members = zone_members(z, size, relay_hops=hops)
        assert len(members) == z
        for zone in members:
            assert len(zone) == size
            heads = {t.parent(m) for m in zone}
            assert len(heads) == 1  # zone hangs off one head relay
        relays = zone_relays(z, size, relay_hops=hops)
        assert len(relays) == z * hops
        member_set = {m for zone in members for m in zone}
        assert member_set.isdisjoint(relays)
        assert member_set | set(relays) | {0} == set(t.nodes)

    def test_zone_members_are_deep(self):
        t = zoned_topology(2, 3, relay_hops=4)
        for zone in zone_members(2, 3, relay_hops=4):
            for member in zone:
                assert t.depth(member) == 5

    def test_rejects_bad_args(self):
        with pytest.raises(TopologyError):
            zoned_topology(0, 3)
        with pytest.raises(TopologyError):
            zoned_topology(2, 0)
