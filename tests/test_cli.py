"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_all_experiments_registered(self):
        for name in ("fig3", "fig4", "fig5", "fig7", "fig8", "fig9",
                     "samples", "lptime"):
            assert name in EXPERIMENTS


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "Figure 3" in out
        assert out.count("\n") == len(EXPERIMENTS)

    def test_run_prints_table(self, capsys, monkeypatch):
        monkeypatch.setitem(
            EXPERIMENTS, "fig4",
            (lambda: [{"a": 1, "b": 2.0}], "Figure 4: effect of variance"),
        )
        assert main(["run", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "a" in out and "1" in out

    def test_run_writes_out_file(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setitem(
            EXPERIMENTS, "fig4",
            (lambda: [{"a": 1}], "Figure 4: effect of variance"),
        )
        target = tmp_path / "table.txt"
        assert main(["run", "fig4", "--out", str(target)]) == 0
        assert "Figure 4" in target.read_text()

    def test_run_all_uses_every_experiment(self, capsys, monkeypatch):
        for name in list(EXPERIMENTS):
            monkeypatch.setitem(
                EXPERIMENTS, name,
                (lambda name=name: [{"id": name}], f"title {name}"),
            )
        assert main(["run", "all"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert f"title {name}" in out


class TestChartFlag:
    def test_chart_appended(self, capsys, monkeypatch):
        from repro.cli import EXPERIMENTS, main

        monkeypatch.setitem(
            EXPERIMENTS, "fig4",
            (
                lambda: [
                    {"algorithm": "a", "energy_mj": 1.0, "accuracy": 0.2},
                    {"algorithm": "a", "energy_mj": 2.0, "accuracy": 0.8},
                ],
                "Figure 4: effect of variance",
            ),
        )
        assert main(["run", "fig4", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "(chart)" in out
        assert "o=a" in out

    def test_chart_skipped_without_numeric_columns(self, capsys, monkeypatch):
        from repro.cli import EXPERIMENTS, main

        monkeypatch.setitem(
            EXPERIMENTS, "fig4",
            (lambda: [{"trial": 1}], "Figure 4: effect of variance"),
        )
        assert main(["run", "fig4", "--chart"]) == 0
        assert "(chart)" not in capsys.readouterr().out


class TestStats:
    DEMO = ["stats", "--demo", "--epochs", "2", "--nodes", "16"]

    def test_stats_requires_demo(self, capsys):
        with pytest.raises(SystemExit):
            main(["stats"])
        assert "--demo" in capsys.readouterr().err

    def test_demo_prints_report(self, capsys):
        assert main(self.DEMO) == 0
        out = capsys.readouterr().out
        assert "repro stats (demo run)" in out
        assert "counters" in out
        # per-planner LP solve-time histograms and engine energy
        # counters are the acceptance bar for the instrumented run
        assert "lp.solve_seconds.prospector-lp-lf" in out
        assert "engine.energy_mj" in out
        assert "plan_installed" in out

    def test_demo_json_round_trips(self, capsys, tmp_path):
        from repro.obs import from_json

        target = tmp_path / "stats.json"
        assert main(self.DEMO + ["--json", "--out", str(target)]) == 0
        restored = from_json(target.read_text())
        assert restored.metrics.counter("lp.solves").value > 0
        assert "plan_built" in restored.trace.kinds()

    def test_demo_prints_energy_ledger(self, capsys):
        assert main(self.DEMO) == 0
        out = capsys.readouterr().out
        assert "energy ledger" in out
        assert "hottest nodes" in out
        assert "burn-down" in out
        assert "network lifetime" in out


class TestTrace:
    DEMO = ["trace", "--demo", "--epochs", "2", "--nodes", "16"]

    def test_trace_requires_demo(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace"])
        assert "--demo" in capsys.readouterr().err

    def test_demo_prints_span_tree_and_energy(self, capsys):
        assert main(self.DEMO) == 0
        out = capsys.readouterr().out
        # the root span and its contiguous phases
        assert "run (epochs=2" in out
        assert "phase.setup" in out
        assert "phase.plan_sweep" in out
        assert "phase.engine" in out
        # planner stack spans nested under the phases
        assert "plan (planner=" in out
        assert "solve (" in out
        assert "sweep.member" in out
        assert "energy ledger" in out

    def test_chrome_export_is_valid_trace_json(self, capsys, tmp_path):
        import json

        target = tmp_path / "trace.json"
        assert main(self.DEMO + ["--chrome", str(target)]) == 0
        doc = json.loads(target.read_text())
        assert doc["traceEvents"][0]["ph"] == "M"
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in complete}
        assert {"run", "phase.setup", "phase.plan_sweep",
                "phase.engine"} <= names
        assert all(e["dur"] >= 0 for e in complete)

    def test_prom_export_has_ledger_gauges(self, capsys, tmp_path):
        target = tmp_path / "metrics.prom"
        assert main(self.DEMO + ["--prom", str(target)]) == 0
        text = target.read_text()
        assert "# TYPE repro_energy_ledger_total_mj gauge" in text
        assert "repro_lp_solves_total" in text

    def test_out_writes_flame_report(self, capsys, tmp_path):
        target = tmp_path / "flame.txt"
        assert main(self.DEMO + ["--out", str(target)]) == 0
        assert "phase.engine" in target.read_text()


class TestPhaseCoverage:
    def test_phase_spans_cover_the_root_within_ten_percent(self):
        """ISSUE acceptance: the demo span tree's per-phase wall times
        must sum to within 10% of the root span."""
        from repro.cli import _stats_demo

        obs, *__ = _stats_demo(epochs=3, nodes=16)
        (root,) = obs.spans.roots
        assert root.name == "run"
        phase_total = sum(
            child.duration_s for child in root.children
            if child.name.startswith("phase.")
        )
        assert phase_total > 0
        assert abs(root.duration_s - phase_total) <= 0.1 * root.duration_s
