"""Batched LP solving: ``solve_batch`` equals per-LP cold solves.

The contract (ISSUE 7): for every formulation and both backends, a
batch solve must agree with independent per-member solves — objectives
to 1e-9 relative, variable vectors exactly equal after the 1e-9 value
rounding, and budget-row duals agreeing across backends.  The pure
simplex's lockstep engine (auto-selected for per-member-cost batches
of >= 12 pure-inequality members, explicitly selectable otherwise)
and its sequential warm-restart path must be interchangeable, and the
degeneracy telemetry (Bland activations, cold fallbacks) must land in
``SolveStats`` and the ``lp.batch.*``/``lp.sweep.*`` counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp import (
    ScipyBackend,
    SimplexBackend,
    compile_lp_lf_parametric,
    compile_lp_no_lf_parametric,
    compile_proof_parametric,
)
from repro.obs import Instrumentation
from repro.planners.proof import ProofPlanner
from repro.service.cache import SharedPlanCache
from tests.lp.test_fastbuild import make_context

# 16 members puts every ladder over the lockstep threshold (12)
_FACTORS = np.linspace(0.7, 2.4, 16)


def _parametric_for(planner_key, context):
    if planner_key == "proof":
        planner = ProofPlanner()
        reserve = planner._reserve(context)
        acquisition = planner._acquisition_total(context)
        return compile_proof_parametric(
            context,
            budget_rhs_of=lambda budget: budget - reserve - acquisition,
        )
    if planner_key == "lp-lf":
        return compile_lp_lf_parametric(context)
    return compile_lp_no_lf_parametric(context)


def _ladder(context, parametric):
    budgets = [context.budget * float(f) for f in _FACTORS]
    return parametric.rhs_values(budgets)


class TestBatchEquivalence:
    @pytest.mark.parametrize("planner_key", ["lp-no-lf", "lp-lf", "proof"])
    @pytest.mark.parametrize("seed,n,m,k", [(0, 10, 5, 3), (1, 16, 7, 4)])
    def test_lockstep_matches_per_member_cold_solves(
        self, planner_key, seed, n, m, k
    ):
        context = make_context(seed, n, m, k, planner_key=planner_key)
        parametric = _parametric_for(planner_key, context)
        rhs = _ladder(context, parametric)
        backend = SimplexBackend()
        batch = backend.solve_batch(parametric, rhs, strategy="lockstep")
        assert len(batch) == len(rhs)
        for value, member in zip(rhs, batch):
            cold = backend.solve_form(
                parametric.form_for_rhs(float(value)), parametric.name
            )
            scale = max(1.0, abs(cold.objective))
            assert member.objective == pytest.approx(
                cold.objective, abs=1e-9 * scale
            )
            assert np.array_equal(
                np.round(member.values, 9), np.round(cold.values, 9)
            )

    @pytest.mark.parametrize("planner_key", ["lp-no-lf", "lp-lf", "proof"])
    def test_lockstep_matches_sequential_strategy(self, planner_key):
        context = make_context(2, 14, 6, 4, planner_key=planner_key)
        parametric = _parametric_for(planner_key, context)
        rhs = _ladder(context, parametric)
        backend = SimplexBackend()
        lockstep = backend.solve_batch(parametric, rhs, strategy="lockstep")
        sequential = backend.solve_batch(
            parametric, rhs, strategy="sequential"
        )
        for a, b in zip(lockstep, sequential):
            scale = max(1.0, abs(b.objective))
            assert a.objective == pytest.approx(b.objective, abs=1e-9 * scale)
            assert np.array_equal(np.round(a.values, 9), np.round(b.values, 9))

    @pytest.mark.parametrize("planner_key", ["lp-no-lf", "lp-lf", "proof"])
    def test_backends_agree_on_objectives_and_duals(self, planner_key):
        context = make_context(3, 12, 6, 3, planner_key=planner_key)
        parametric = _parametric_for(planner_key, context)
        rhs = _ladder(context, parametric)
        simplex = SimplexBackend().solve_batch(
            parametric, rhs, strategy="lockstep"
        )
        scipy = ScipyBackend().solve_batch(parametric, rhs)
        row = parametric.row
        for a, b in zip(simplex, scipy):
            scale = max(1.0, abs(b.objective))
            assert a.objective == pytest.approx(b.objective, abs=1e-7 * scale)
            # the budget-row shadow price is the quantity downstream
            # planners consume; dual degeneracy can move other rows
            assert a.inequality_duals is not None
            assert b.inequality_duals is not None
            assert float(a.inequality_duals[row]) == pytest.approx(
                float(b.inequality_duals[row]), abs=1e-6 * scale
            )

    @pytest.mark.parametrize("backend_cls", [SimplexBackend, ScipyBackend])
    def test_per_member_costs(self, backend_cls):
        context = make_context(4, 12, 6, 3, planner_key="lp-no-lf")
        parametric = compile_lp_no_lf_parametric(context)
        rng = np.random.default_rng(11)
        base = parametric.form.c
        costs = np.stack(
            [base * (1.0 + 0.2 * rng.random(base.size)) for _ in _FACTORS]
        )
        rhs = np.full(len(_FACTORS), float(parametric.form.b_ub[parametric.row]))
        backend = backend_cls()
        batch = backend.solve_batch(parametric, rhs, costs=costs)
        reference = SimplexBackend().solve_batch(
            parametric, rhs, costs=costs, strategy="sequential"
        )
        for a, b in zip(batch, reference):
            scale = max(1.0, abs(b.objective))
            tol = 1e-9 if backend_cls is SimplexBackend else 1e-7
            assert a.objective == pytest.approx(b.objective, abs=tol * scale)

    def test_rhs_ladders_stay_on_the_warm_restart_path(self):
        # RHS-only ladders keep dual warm restarts regardless of length:
        # a later member restarts from the previous optimal basis
        context = make_context(5, 14, 6, 4)
        parametric = compile_lp_lf_parametric(context)
        for budgets in (
            [context.budget * f for f in (0.8, 1.0, 1.3, 1.7)],
            [context.budget * float(f) for f in _FACTORS],
        ):
            members = SimplexBackend().solve_batch(
                parametric, parametric.rhs_values(budgets)
            )
            assert any(m.stats.warm_started for m in members[1:])

    def test_cost_batches_select_lockstep(self):
        # per-member cost vectors invalidate warm bases, so the auto
        # strategy routes large batches to the lockstep engine
        obs = Instrumentation()
        context = make_context(5, 12, 6, 3)
        parametric = compile_lp_no_lf_parametric(context)
        rhs = _ladder(context, parametric)
        base = parametric.form.c
        rng = np.random.default_rng(3)
        costs = np.stack(
            [base * (1.0 + 0.1 * rng.random(base.size)) for _ in rhs]
        )
        members = SimplexBackend(instrumentation=obs).solve_batch(
            parametric, rhs, costs=costs
        )
        assert all(m.stats.warm_started is False for m in members)
        assert obs.counter("lp.batch.solves").value == 1
        assert obs.counter("lp.batch.lockstep_iterations").value > 0


class TestBatchTelemetry:
    def test_lockstep_records_lp_batch_counters(self):
        obs = Instrumentation()
        context = make_context(6, 12, 6, 3)
        parametric = compile_lp_no_lf_parametric(context)
        rhs = _ladder(context, parametric)
        backend = SimplexBackend(instrumentation=obs)
        members = backend.solve_batch(parametric, rhs, strategy="lockstep")
        assert obs.counter("lp.batch.solves").value == 1
        assert obs.counter("lp.batch.members").value == len(rhs)
        assert obs.counter("lp.batch.lockstep_iterations").value > 0
        fallbacks = sum(1 for m in members if m.stats.cold_fallback)
        assert obs.counter("lp.batch.cold_fallbacks").value == fallbacks
        events = obs.trace.events("lp_batch")
        assert len(events) == 1
        assert events[0].data["members"] == len(rhs)

    def test_sequential_sweep_records_degeneracy_counters(self):
        obs = Instrumentation()
        context = make_context(6, 12, 6, 3)
        parametric = compile_lp_no_lf_parametric(context)
        budgets = [context.budget * f for f in (0.8, 1.0, 1.3, 1.7)]
        backend = SimplexBackend(instrumentation=obs)
        members = backend.solve_sweep(parametric, parametric.rhs_values(budgets))
        assert obs.counter("lp.sweep.solves").value == 1
        blands = sum(m.stats.bland_activations for m in members)
        falls = sum(1 for m in members if m.stats.cold_fallback)
        assert obs.counter("lp.sweep.bland_activations").value == blands
        assert obs.counter("lp.sweep.cold_fallbacks").value == falls

    def test_scipy_batch_records_counters(self):
        obs = Instrumentation()
        context = make_context(7, 10, 5, 3)
        parametric = compile_lp_no_lf_parametric(context)
        rhs = _ladder(context, parametric)
        ScipyBackend(instrumentation=obs).solve_batch(parametric, rhs)
        assert obs.counter("lp.batch.solves").value == 1
        assert obs.counter("lp.batch.members").value == len(rhs)
        assert obs.counter("lp.batch.lockstep_iterations").value == 0


class TestSharedSweepCache:
    def test_equal_ladders_solve_once(self):
        cache = SharedPlanCache()
        context = make_context(8, 10, 5, 3)
        parametric = compile_lp_no_lf_parametric(context)
        rhs = _ladder(context, parametric)
        backend = SimplexBackend()
        first = cache.sweep_solutions(
            "lp-no-lf", context, parametric, rhs, backend
        )
        second = cache.sweep_solutions(
            "lp-no-lf", context, parametric, rhs, backend
        )
        assert cache.sweep_misses == 1
        assert cache.sweep_hits == 1
        assert [m.objective for m in first] == [m.objective for m in second]
        stats = cache.stats()
        assert stats["sweep_entries"] == 1
        assert stats["sweep_hits"] == 1

    def test_different_ladders_miss(self):
        cache = SharedPlanCache()
        context = make_context(8, 10, 5, 3)
        parametric = compile_lp_no_lf_parametric(context)
        rhs = _ladder(context, parametric)
        backend = SimplexBackend()
        cache.sweep_solutions("lp-no-lf", context, parametric, rhs, backend)
        cache.sweep_solutions(
            "lp-no-lf", context, parametric, rhs * 1.1, backend
        )
        assert cache.sweep_misses == 2
        assert cache.sweep_hits == 0
