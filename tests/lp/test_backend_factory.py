"""Tests for the backend protocol, factory, and name resolution."""

import pytest

from repro.errors import SolverError
from repro.lp import (
    Backend,
    Model,
    ScipyBackend,
    SimplexBackend,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.obs import Instrumentation


def tiny_model() -> Model:
    model = Model("tiny")
    x = model.add_variable("x", ub=4.0)
    y = model.add_variable("y", ub=3.0)
    model.add_constraint(x + y <= 5.0, name="cap")
    model.maximize(2.0 * x + y)
    return model


class TestFactory:
    def test_default_is_scipy_highs(self):
        backend = get_backend()
        assert isinstance(backend, ScipyBackend)
        assert backend.name == "scipy-highs"

    @pytest.mark.parametrize("alias", ["scipy-highs", "scipy", "highs"])
    def test_scipy_aliases(self, alias):
        assert isinstance(get_backend(alias), ScipyBackend)

    @pytest.mark.parametrize("alias", ["pure-simplex", "simplex"])
    def test_simplex_aliases(self, alias):
        assert isinstance(get_backend(alias), SimplexBackend)

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(SolverError, match="unknown LP backend 'glpk'"):
            get_backend("glpk")
        with pytest.raises(SolverError, match="pure-simplex"):
            get_backend("glpk")

    def test_available_backends_sorted_and_complete(self):
        names = available_backends()
        assert names == tuple(sorted(names))
        assert {"scipy-highs", "pure-simplex"} <= set(names)

    def test_factory_products_satisfy_protocol(self):
        for name in available_backends():
            assert isinstance(get_backend(name), Backend)


class TestResolve:
    def test_instance_passes_through_unchanged(self):
        backend = SimplexBackend()
        assert resolve_backend(backend) is backend

    def test_instance_keeps_its_own_instrumentation(self):
        # an already-constructed backend's own wiring governs, even if
        # the resolver is handed a different Instrumentation
        backend = SimplexBackend()
        assert resolve_backend(backend, Instrumentation()) is backend
        assert backend.instrumentation is None

    def test_name_and_none_build_fresh(self):
        assert isinstance(resolve_backend("simplex"), SimplexBackend)
        assert isinstance(resolve_backend(None), ScipyBackend)

    def test_instrumentation_threaded_into_built_backend(self):
        obs = Instrumentation()
        backend = resolve_backend("scipy", obs)
        assert backend.instrumentation is obs


class TestModelSolveSpecs:
    def test_solve_accepts_name(self):
        solution = tiny_model().solve("pure-simplex")
        assert solution.objective == pytest.approx(9.0)

    def test_solve_accepts_instance_and_none(self):
        by_instance = tiny_model().solve(ScipyBackend())
        by_default = tiny_model().solve()
        assert by_instance.objective == pytest.approx(9.0)
        assert by_default.objective == pytest.approx(9.0)

    def test_solve_rejects_unknown_name(self):
        with pytest.raises(SolverError, match="unknown LP backend"):
            tiny_model().solve("cplex")


class TestInstrumentedBackends:
    @pytest.mark.parametrize("name", ["scipy-highs", "pure-simplex"])
    def test_each_solve_is_recorded(self, name):
        obs = Instrumentation()
        backend = get_backend(name, instrumentation=obs)
        tiny_model().solve(backend)
        tiny_model().solve(backend)

        assert obs.metrics.counter("lp.solves").value == 2
        hist = obs.metrics.histogram("lp.solve_seconds.tiny")
        assert hist.count == 2
        events = obs.trace.events("lp_solve")
        assert len(events) == 2
        assert events[0].data["model"] == "tiny"
        assert events[0].data["backend"] == backend.name
        assert events[0].data["variables"] == 2
        assert events[0].data["constraints"] == 1

    def test_uninstrumented_backend_records_nothing(self):
        backend = get_backend("pure-simplex")
        assert backend.instrumentation is None
        tiny_model().solve(backend)  # must not raise
