"""Unit tests for the pure-Python simplex backend."""

import pytest

from repro.errors import SolverError
from repro.lp import Model, ScipyBackend, SimplexBackend


@pytest.fixture
def backend():
    return SimplexBackend()


@pytest.fixture(params=["pure-simplex", "scipy-highs"])
def any_backend(request):
    """Edge cases must behave identically on both backends."""
    if request.param == "pure-simplex":
        return SimplexBackend()
    return ScipyBackend()


class TestSimplexBasics:
    def test_textbook_maximization(self, backend):
        m = Model()
        x, y = m.add_variables(["x", "y"])
        m.add_constraint(x + 2 * y <= 14)
        m.add_constraint(3 * x - y >= 0)
        m.add_constraint(x - y <= 2)
        m.maximize(3 * x + 4 * y)
        sol = m.solve(backend)
        assert sol.objective == pytest.approx(34.0)
        assert sol.value(x) == pytest.approx(6.0)
        assert sol.value(y) == pytest.approx(4.0)

    def test_equality_constraints(self, backend):
        m = Model()
        x, y = m.add_variables(["x", "y"])
        m.add_constraint(x + y == 4)
        m.minimize(x - y)
        assert m.solve(backend).objective == pytest.approx(-4.0)

    def test_free_variables(self, backend):
        m = Model()
        a = m.add_variable("a", lb=None)
        b = m.add_variable("b", lb=None)
        m.add_constraint(a + b == 1)
        m.add_constraint(a - b == 5)
        m.minimize(a + b)
        sol = m.solve(backend)
        assert sol.value(a) == pytest.approx(3.0)
        assert sol.value(b) == pytest.approx(-2.0)

    def test_upper_bounded_variables(self, backend):
        m = Model()
        x = m.add_variable("x", lb=1.0, ub=2.5)
        m.maximize(x)
        assert m.solve(backend).objective == pytest.approx(2.5)

    def test_ub_only_variable(self, backend):
        m = Model()
        x = m.add_variable("x", lb=None, ub=3.0)
        m.maximize(x)
        assert m.solve(backend).objective == pytest.approx(3.0)

    def test_negative_bounds(self, backend):
        m = Model()
        x = m.add_variable("x", lb=-5.0, ub=-1.0)
        m.minimize(x)
        assert m.solve(backend).objective == pytest.approx(-5.0)

    def test_infeasible_detected(self, backend):
        m = Model()
        x = m.add_variable("x")
        m.add_constraint(x <= 1)
        m.add_constraint(x >= 2)
        m.minimize(x)
        with pytest.raises(SolverError) as err:
            m.solve(backend)
        assert err.value.status == "infeasible"

    def test_unbounded_detected(self, backend):
        m = Model()
        x = m.add_variable("x")
        m.maximize(x)
        with pytest.raises(SolverError) as err:
            m.solve(backend)
        assert err.value.status == "unbounded"

    def test_degenerate_lp_terminates(self, backend):
        # classic Beale-style cycling candidate; Bland's rule must finish
        m = Model()
        x1, x2, x3, x4 = m.add_variables(["x1", "x2", "x3", "x4"])
        m.add_constraint(0.5 * x1 - 5.5 * x2 - 2.5 * x3 + 9 * x4 <= 0)
        m.add_constraint(0.5 * x1 - 1.5 * x2 - 0.5 * x3 + x4 <= 0)
        m.add_constraint(x1 <= 1)
        m.maximize(10 * x1 - 57 * x2 - 9 * x3 - 24 * x4)
        sol = m.solve(backend)
        assert sol.objective == pytest.approx(1.0)

    def test_stats_backend_name(self, backend):
        m = Model()
        x = m.add_variable("x", ub=1.0)
        m.maximize(x)
        sol = m.solve(backend)
        assert sol.stats.backend == "pure-simplex"
        assert sol.stats.iterations >= 1

    def test_iteration_limit(self):
        tight = SimplexBackend(max_iterations=1)
        m = Model()
        x, y = m.add_variables(["x", "y"])
        m.add_constraint(x + y <= 10)
        m.add_constraint(x - y <= 3)
        m.maximize(x + 2 * y)
        with pytest.raises(SolverError):
            m.solve(tight)


class TestEdgeCasesBothBackends:
    """Behaviours the revised-simplex rewrite must preserve, checked
    against HiGHS on the same models."""

    def test_infeasible_needs_phase_one(self, any_backend):
        # the slack basis cannot satisfy x >= 2 under x <= 1, so the
        # simplex must go through phase 1 and report its residual
        m = Model()
        x = m.add_variable("x")
        m.add_constraint(x <= 1)
        m.add_constraint(x >= 2)
        m.minimize(x)
        with pytest.raises(SolverError) as err:
            m.solve(any_backend)
        assert err.value.status == "infeasible"

    def test_infeasible_equality_system(self, any_backend):
        m = Model()
        x, y = m.add_variables(["x", "y"])
        m.add_constraint(x + y == 1)
        m.add_constraint(x + y == 3)
        m.minimize(x)
        with pytest.raises(SolverError) as err:
            m.solve(any_backend)
        assert err.value.status == "infeasible"

    def test_unbounded(self, any_backend):
        m = Model()
        x = m.add_variable("x")
        y = m.add_variable("y")
        m.add_constraint(x - y <= 1)
        m.maximize(x + y)
        with pytest.raises(SolverError) as err:
            m.solve(any_backend)
        assert err.value.status == "unbounded"

    def test_degenerate_ties(self, any_backend):
        # multiple constraints meet at the optimum with zero slack;
        # Beale's cycling candidate must still terminate at 1.0
        m = Model()
        x1, x2, x3, x4 = m.add_variables(["x1", "x2", "x3", "x4"])
        m.add_constraint(0.5 * x1 - 5.5 * x2 - 2.5 * x3 + 9 * x4 <= 0)
        m.add_constraint(0.5 * x1 - 1.5 * x2 - 0.5 * x3 + x4 <= 0)
        m.add_constraint(x1 <= 1)
        m.maximize(10 * x1 - 57 * x2 - 9 * x3 - 24 * x4)
        sol = m.solve(any_backend)
        assert sol.objective == pytest.approx(1.0, abs=1e-6)

    def test_free_variables(self, any_backend):
        m = Model()
        a = m.add_variable("a", lb=None)
        b = m.add_variable("b", lb=None)
        m.add_constraint(a + b == 1)
        m.add_constraint(a - b == 5)
        m.minimize(a + b)
        sol = m.solve(any_backend)
        assert sol.value(a) == pytest.approx(3.0, abs=1e-6)
        assert sol.value(b) == pytest.approx(-2.0, abs=1e-6)

    def test_free_variable_negative_optimum(self, any_backend):
        m = Model()
        x = m.add_variable("x", lb=None)
        m.add_constraint(x >= -7)
        m.minimize(x)
        assert m.solve(any_backend).objective == pytest.approx(-7.0, abs=1e-6)

    def test_redundant_equality_rows(self, any_backend):
        # the duplicated and scaled rows leave artificials pinned on
        # linearly dependent rows; the optimum must be unaffected
        m = Model()
        x, y = m.add_variables(["x", "y"])
        m.add_constraint(x + y == 4)
        m.add_constraint(x + y == 4)
        m.add_constraint(2 * x + 2 * y == 8)
        m.minimize(x - y)
        sol = m.solve(any_backend)
        assert sol.objective == pytest.approx(-4.0, abs=1e-6)
        assert sol.value(y) == pytest.approx(4.0, abs=1e-6)
