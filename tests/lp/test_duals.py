"""Tests for LP dual values (shadow prices)."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.lp import Model, ScipyBackend, SimplexBackend


def solve_with_budget(capacity):
    # non-degenerate: the optimum is the interior vertex of the two
    # rows, no variable bound binds, so the duals are unique
    m = Model()
    x = m.add_variable("x", ub=100.0)
    y = m.add_variable("y", ub=100.0)
    budget = m.add_constraint(2 * x + y <= capacity, name="budget")
    m.add_constraint(x + 3 * y <= 15)
    m.maximize(5 * x + 4 * y)
    return m, budget, m.solve()


class TestDuals:
    def test_budget_shadow_price_matches_finite_difference(self):
        m, budget, sol = solve_with_budget(10.0)
        price = sol.dual_of(m, budget)
        __, __, bumped = solve_with_budget(10.0 + 1e-3)
        finite_diff = (bumped.objective - sol.objective) / 1e-3
        assert price == pytest.approx(finite_diff, abs=1e-6)
        assert price > 0  # more budget helps a maximization

    def test_slack_constraint_has_zero_price(self):
        m = Model()
        x = m.add_variable("x", ub=1.0)
        tight = m.add_constraint(x <= 1.0, name="tight")
        loose = m.add_constraint(x <= 100.0, name="loose")
        m.maximize(x)
        sol = m.solve()
        assert sol.dual_of(m, loose) == pytest.approx(0.0)

    def test_ge_constraint_sign_convention(self):
        # forcing x >= floor on a minimization: raising the floor raises
        # the objective, so d(obj)/d(rhs) is positive
        m = Model()
        x = m.add_variable("x", ub=100.0)
        floor = m.add_constraint(x >= 3.0, name="floor")
        m.minimize(x)
        sol = m.solve()
        assert sol.value(x) == pytest.approx(3.0)
        assert sol.dual_of(m, floor) == pytest.approx(1.0)

    def test_equality_constraints_rejected(self):
        m = Model()
        x = m.add_variable("x")
        eq = m.add_constraint(x.to_expr() == 5.0)
        m.minimize(x)
        sol = m.solve()
        with pytest.raises(SolverError, match="inequality"):
            sol.dual_of(m, eq)

    def test_simplex_backend_returns_duals(self):
        """Revised simplex yields ``y = c_B B^-T`` for free, so the
        cross-check backend is no longer HiGHS-only for shadow prices."""
        m, budget, __ = solve_with_budget(10.0)
        sol = m.solve(SimplexBackend())
        assert sol.inequality_duals is not None
        assert sol.dual_of(m, budget) == pytest.approx(2.2)

    def test_planner_budget_shadow_price(self):
        """The practical use: marginal accuracy per mJ of budget."""
        from repro.network.builder import star_topology
        from repro.network.energy import EnergyModel
        from repro.planners.base import PlanningContext
        from repro.planners.lp_no_lf import LPNoLFPlanner
        from repro.sampling.matrix import SampleMatrix

        topo = star_topology(6)
        rng = np.random.default_rng(0)
        samples = SampleMatrix(rng.normal(10, 3, size=(10, 6)), 3)
        energy = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.1)
        context = PlanningContext(topo, energy, samples, 3, budget=2.0)
        planner = LPNoLFPlanner()
        model, __, __ = planner.build_model(context)
        budget_row = next(c for c in model.constraints if c.name == "budget")
        sol = model.solve()
        price = sol.dual_of(model, budget_row)
        assert price >= 0  # extra budget never hurts coverage


class TestCrossBackendDuals:
    """The two backends must agree on shadow prices wherever the dual
    solution is unique (non-degenerate optima); dual-degenerate rows of
    the planner LPs are legitimately backend-dependent and not compared.
    """

    def test_budget_model_duals_agree(self):
        m, budget, __ = solve_with_budget(10.0)
        ours = m.solve(SimplexBackend())
        reference = m.solve(ScipyBackend())
        np.testing.assert_allclose(
            ours.inequality_duals, reference.inequality_duals, atol=1e-6
        )
        assert ours.dual_of(m, budget) == pytest.approx(
            reference.dual_of(m, budget), abs=1e-6
        )

    def test_ge_row_orientation_agrees(self):
        m = Model()
        x = m.add_variable("x", ub=100.0)
        floor = m.add_constraint(x >= 3.0, name="floor")
        m.minimize(x)
        ours = m.solve(SimplexBackend())
        reference = m.solve(ScipyBackend())
        assert ours.dual_of(m, floor) == pytest.approx(1.0, abs=1e-6)
        assert reference.dual_of(m, floor) == pytest.approx(1.0, abs=1e-6)

    def test_maximization_sign_agrees(self):
        m = Model()
        x = m.add_variable("x", ub=4.0)
        y = m.add_variable("y", ub=4.0)
        cap = m.add_constraint(x + y <= 5.0, name="cap")
        m.maximize(3 * x + y)
        ours = m.solve(SimplexBackend())
        reference = m.solve(ScipyBackend())
        assert ours.dual_of(m, cap) == pytest.approx(
            reference.dual_of(m, cap), abs=1e-6
        )
        assert ours.dual_of(m, cap) > 0

    def test_planner_budget_row_agrees(self):
        from tests.lp.test_fastbuild import make_context
        from repro.planners.lp_no_lf import LPNoLFPlanner

        context = make_context(5, 12, 8, 4, planner_key="lp-no-lf")
        model, __, __ = LPNoLFPlanner().build_model(context)
        budget_row = next(
            c for c in model.constraints if c.name == "budget"
        )
        ours = model.solve(SimplexBackend())
        reference = model.solve(ScipyBackend())
        assert ours.dual_of(model, budget_row) == pytest.approx(
            reference.dual_of(model, budget_row), abs=1e-6
        )
