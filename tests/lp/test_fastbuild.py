"""Equivalence and cache tests for the fast-path LP compiler.

The contract of :mod:`repro.lp.fastbuild` is *bitwise* agreement with
the algebraic oracle: ``compile_fast(context)`` must produce the exact
arrays of ``compile_model(planner.build_model(context))`` — same row
and column order, same floats — so the two paths are interchangeable
everywhere downstream.  These tests sweep random topologies, sample
matrices, ``k`` and energy models, and additionally check the replan
cache's invalidation rules (topology change, ``k`` change, cost drift).
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np
import pytest

from repro.datagen.gaussian import random_gaussian_field
from repro.lp import (
    ReplanCache,
    ScipyBackend,
    SimplexBackend,
    compile_lp_lf,
    compile_model,
)
from repro.network.builder import line_topology, random_topology
from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.obs import Instrumentation
from repro.planners.base import PlanningContext
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.planners.proof import ProofPlanner
from repro.sampling.matrix import SampleMatrix

PLANNERS = {
    "lp-no-lf": LPNoLFPlanner,
    "lp-lf": LPLFPlanner,
    "proof": ProofPlanner,
}


def make_context(
    seed: int,
    n: int,
    m: int,
    k: int,
    *,
    planner_key: str = "lp-lf",
    energy: EnergyModel | None = None,
    failures: LinkFailureModel | None = None,
    instrumentation: Instrumentation | None = None,
) -> PlanningContext:
    """A random but reproducible planning context (paper-style field)."""
    rng = np.random.default_rng(seed)
    topology = random_topology(
        n, radio_range=max(25.0, 200.0 / n**0.5), rng=rng
    )
    field = random_gaussian_field(n, rng).scaled_variance(4.0)
    samples = SampleMatrix(
        np.vstack([field.sample(rng) for _ in range(m)]), k
    )
    energy = energy or EnergyModel.mica2()
    if planner_key == "proof":
        probe = PlanningContext(
            topology=topology, energy=energy, samples=samples, k=k, budget=1e9,
            failures=failures,
        )
        budget = ProofPlanner().minimum_cost(probe) * 1.5
    else:
        budget = energy.message_cost(1) * 2 * k
    return PlanningContext(
        topology=topology,
        energy=energy,
        samples=samples,
        k=k,
        budget=budget,
        failures=failures,
        instrumentation=instrumentation,
    )


def assert_forms_equal(compiled, model) -> None:
    """Bitwise comparison against the algebraic oracle."""
    reference = compile_model(model)
    form = compiled.form
    assert compiled.name == model.name
    assert compiled.column_names == [v.name for v in model.variables]
    assert form.maximize == reference.maximize
    assert form.objective_constant == reference.objective_constant
    assert np.array_equal(form.c, reference.c)
    assert np.array_equal(form.b_ub, reference.b_ub)
    assert np.array_equal(form.b_eq, reference.b_eq)
    assert form.bounds == reference.bounds
    assert form.a_ub.shape == reference.a_ub.shape
    assert np.array_equal(form.a_ub.indptr, reference.a_ub.indptr)
    assert np.array_equal(form.a_ub.indices, reference.a_ub.indices)
    assert np.array_equal(form.a_ub.data, reference.a_ub.data)
    assert form.a_eq.shape == reference.a_eq.shape
    assert form.a_eq.nnz == reference.a_eq.nnz


class TestEquivalence:
    @pytest.mark.parametrize("planner_key", sorted(PLANNERS))
    @pytest.mark.parametrize(
        "seed,n,m,k",
        [(0, 2, 1, 1), (1, 8, 5, 3), (2, 14, 8, 4), (3, 20, 10, 6)],
    )
    def test_matches_algebraic_oracle(self, planner_key, seed, n, m, k):
        context = make_context(seed, n, m, k, planner_key=planner_key)
        planner = PLANNERS[planner_key]()
        compiled = planner.compile_fast(context)
        assert_forms_equal(compiled, planner.build_model(context)[0])

    @pytest.mark.parametrize("planner_key", sorted(PLANNERS))
    def test_matches_with_acquisition_and_failures(self, planner_key):
        energy = dataclasses.replace(EnergyModel.mica2(), acquisition_mj=0.05)
        rng = np.random.default_rng(7)
        context = make_context(7, 12, 6, 3, planner_key=planner_key, energy=energy)
        context.failures = LinkFailureModel.random(context.topology, rng)
        planner = PLANNERS[planner_key]()
        compiled = planner.compile_fast(context)
        assert_forms_equal(compiled, planner.build_model(context)[0])

    @pytest.mark.parametrize("planner_key", sorted(PLANNERS))
    def test_degenerate_line_k_exceeds_nodes(self, planner_key):
        topology = line_topology(3)
        samples = SampleMatrix(np.array([[3.0, 1.0, 2.0]]), 5)  # k clamps
        energy = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.3)
        context = PlanningContext(
            topology=topology, energy=energy, samples=samples, k=5, budget=9.0
        )
        planner = PLANNERS[planner_key]()
        compiled = planner.compile_fast(context)
        assert_forms_equal(compiled, planner.build_model(context)[0])

    @pytest.mark.parametrize("planner_key", sorted(PLANNERS))
    def test_same_plan_both_compilers(self, planner_key):
        """End to end: identical rounded bandwidths and objective."""
        for seed in (11, 12):
            fast_ctx = make_context(seed, 15, 8, 3, planner_key=planner_key)
            slow_ctx = make_context(seed, 15, 8, 3, planner_key=planner_key)
            fast = PLANNERS[planner_key](compiler="fast").plan(fast_ctx)
            slow = PLANNERS[planner_key](compiler="algebraic").plan(slow_ctx)
            assert fast.bandwidths == slow.bandwidths

    def test_same_objective_both_solve_entry_points(self):
        context = make_context(21, 18, 9, 4)
        planner = LPLFPlanner()
        compiled = planner.compile_fast(context)
        fast = ScipyBackend().solve_form(compiled.form, compiled.name)
        slow = planner.build_model(context)[0].solve(ScipyBackend())
        assert fast.objective == slow.objective
        assert np.array_equal(fast.values, slow.values)

    def test_simplex_backend_solves_compiled_form(self):
        context = make_context(5, 6, 3, 2)
        compiled = LPLFPlanner().compile_fast(context)
        simplex = SimplexBackend().solve_form(compiled.form, compiled.name)
        scipy_sol = ScipyBackend().solve_form(compiled.form, compiled.name)
        assert simplex.objective == pytest.approx(scipy_sol.objective, abs=1e-6)

    def test_rejects_unknown_compiler(self):
        for cls in PLANNERS.values():
            with pytest.raises(ValueError, match="compiler"):
                cls(compiler="turbo")


class TestReplanCache:
    def test_window_slide_hits(self):
        """Same topology/k/costs, new samples: static blocks are reused
        and the output still matches the oracle exactly."""
        planner = LPLFPlanner()
        first = make_context(30, 10, 5, 3)
        planner.compile_fast(first)
        cache = planner.replan_cache
        assert (cache.hits, cache.misses) == (0, 1)

        slide = PlanningContext(
            topology=first.topology,
            energy=first.energy,
            samples=first.samples.with_sample(
                np.random.default_rng(31).normal(25.0, 4.0, first.topology.n)
            ),
            k=first.k,
            budget=first.budget,
        )
        compiled = planner.compile_fast(slide)
        assert (cache.hits, cache.misses) == (1, 1)
        assert_forms_equal(compiled, planner.build_model(slide)[0])

    def test_topology_change_invalidates(self):
        planner = LPNoLFPlanner()
        first = make_context(40, 10, 5, 3, planner_key="lp-no-lf")
        second = make_context(41, 10, 5, 3, planner_key="lp-no-lf")
        planner.compile_fast(first)
        compiled = planner.compile_fast(second)
        # both topologies stay alive here, so ids cannot collide
        assert planner.replan_cache.hits == 0
        assert planner.replan_cache.misses == 2
        assert_forms_equal(compiled, planner.build_model(second)[0])

    def test_k_change_invalidates(self):
        planner = LPLFPlanner()
        first = make_context(50, 10, 5, 3)
        planner.compile_fast(first)
        rekeyed = PlanningContext(
            topology=first.topology,
            energy=first.energy,
            samples=SampleMatrix(first.samples.values, 2),
            k=2,
            budget=first.budget,
        )
        compiled = planner.compile_fast(rekeyed)
        assert planner.replan_cache.hits == 0
        assert planner.replan_cache.misses == 2
        assert_forms_equal(compiled, planner.build_model(rekeyed)[0])

    def test_cost_drift_invalidates(self):
        """An EWMA update to the failure model changes edge costs and
        must miss — a stale budget row would silently misprice plans."""
        planner = LPLFPlanner()
        first = make_context(60, 10, 5, 3)
        first.failures = LinkFailureModel.uniform(first.topology, 0.1, 2.0)
        planner.compile_fast(first)
        first.failures.record_failure(first.topology.edges[0], failed=True)
        compiled = planner.compile_fast(first)
        assert planner.replan_cache.hits == 0
        assert planner.replan_cache.misses == 2
        assert_forms_equal(compiled, planner.build_model(first)[0])

    def test_content_keying_shares_equal_structures(self):
        """Structurally equal topologies share an entry (the property
        the cross-session service caches rely on), while a colliding
        key with a *different* tree is rejected by the structure check."""
        cache = ReplanCache()
        topo_a = line_topology(4)
        cache.put(("x",), topo_a, {"payload": 1})
        assert cache.get(("x",), line_topology(4))["payload"] == 1
        assert cache.get(("x",), line_topology(5)) is None
        assert cache.get(("x",), topo_a)["payload"] == 1

    def test_capacity_evicts_least_recently_used(self):
        cache = ReplanCache(capacity=2)
        topos = [line_topology(3) for _ in range(3)]
        cache.put((0,), topos[0], {})
        cache.put((1,), topos[1], {})
        cache.get((0,), topos[0])  # refresh 0 so 1 is now the LRU entry
        cache.put((2,), topos[2], {})
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get((1,), topos[1]) is None
        assert cache.get((0,), topos[0]) is not None

    def test_concurrent_access_is_safe(self):
        """Hammering one cache from many threads must not corrupt it
        (shared cross-session instances depend on this)."""
        import threading

        cache = ReplanCache(capacity=4)
        topo = line_topology(3)
        errors: list[Exception] = []

        def worker(worker_id: int) -> None:
            try:
                for i in range(200):
                    key = ((worker_id + i) % 8,)
                    if cache.get(key, topo) is None:
                        cache.put(key, topo, {"payload": i})
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 4
        assert cache.hits + cache.misses == 6 * 200

    def test_obs_counters_and_timers(self):
        obs = Instrumentation()
        planner = LPLFPlanner()
        context = make_context(70, 10, 5, 3, instrumentation=obs)
        planner.compile_fast(context)
        planner.compile_fast(context)
        assert obs.metrics.counter("fastbuild.cache.misses").value == 1
        assert obs.metrics.counter("fastbuild.cache.hits").value == 1
        hist = obs.metrics.histogram(
            "fastbuild.compile_seconds.prospector-lp-lf"
        )
        assert hist.count == 2


class TestEngineReplanUsesCache:
    def test_replans_on_unchanged_topology_hit(self):
        from repro.query.engine import EngineConfig, TopKEngine

        obs = Instrumentation()
        planner = LPLFPlanner()
        engine = TopKEngine(
            topology=line_topology(5),
            energy=EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.3),
            k=2,
            planner=planner,
            config=EngineConfig(budget_mj=12.0, window_capacity=10),
            instrumentation=obs,
        )
        rng = np.random.default_rng(0)
        for _ in range(3):
            engine.feed_sample(rng.normal(20.0, 5.0, 5))
        engine.ensure_plan()
        engine.feed_sample(rng.normal(20.0, 5.0, 5))  # forces a replan
        engine.ensure_plan()
        assert planner.replan_cache.hits >= 1
        assert obs.metrics.counter("fastbuild.cache.hits").value >= 1


class TestPerfSmoke:
    def test_fastbuild_compiles_large_instance_quickly(self):
        """The ISSUE acceptance instance (n=60, m=25) must compile fast.

        The measured time is well under 10 ms; the one-second ceiling
        only guards against an accidental return to per-entry Python
        loops, not against slow CI machines.
        """
        context = make_context(99, 60, 25, 10)
        compile_lp_lf(context)  # warm numpy/scipy code paths
        start = time.perf_counter()
        compiled = compile_lp_lf(context)
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0
        assert compiled.form.a_ub.shape[1] == compiled.form.c.size
