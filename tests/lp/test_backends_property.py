"""Property test: the two LP backends agree on random feasible LPs.

This is the cross-check that justifies trusting the production HiGHS
backend for every PROSPECTOR formulation.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.lp import Model, ScipyBackend, SimplexBackend


@st.composite
def random_lp(draw):
    """Small random LPs with bounded variables (always feasible at 0
    relative to their bounds and never unbounded above)."""
    num_vars = draw(st.integers(min_value=1, max_value=4))
    num_cons = draw(st.integers(min_value=0, max_value=4))
    coeff = st.integers(min_value=-4, max_value=4)

    m = Model("random")
    xs = []
    for i in range(num_vars):
        lb = draw(st.integers(min_value=-3, max_value=1))
        ub = lb + draw(st.integers(min_value=0, max_value=5))
        xs.append(m.add_variable(f"x{i}", lb=float(lb), ub=float(ub)))

    for __ in range(num_cons):
        weights = [draw(coeff) for __ in xs]
        expr = sum(w * x for w, x in zip(weights, xs) if w) if any(weights) else None
        if expr is None:
            continue
        sense = draw(st.sampled_from(["<=", ">="]))
        rhs = draw(st.integers(min_value=-10, max_value=20))
        m.add_constraint(expr <= rhs if sense == "<=" else expr >= rhs)

    objective = sum(draw(coeff) * x for x in xs)
    if draw(st.booleans()):
        m.maximize(objective)
    else:
        m.minimize(objective)
    return m


@settings(max_examples=120, deadline=None)
@given(random_lp())
def test_backends_agree(model):
    try:
        reference = model.solve(ScipyBackend())
    except SolverError as err:
        # infeasible LP: the simplex must agree it is infeasible
        with pytest.raises(SolverError):
            model.solve(SimplexBackend())
        assert err.status in {"infeasible", "unbounded", "numerical"}
        return
    ours = model.solve(SimplexBackend())
    assert ours.objective == pytest.approx(reference.objective, abs=1e-6)
    # both solutions must satisfy every constraint and bound
    for solution in (reference, ours):
        for constraint in model.constraints:
            assert constraint.is_satisfied(solution.values, tol=1e-6)
        for var in model.variables:
            value = solution.values[var.index]
            if var.lb is not None:
                assert value >= var.lb - 1e-6
            if var.ub is not None:
                assert value <= var.ub + 1e-6
