"""Parametric sweep equivalence: one compile, many budgets.

The contract of :class:`repro.lp.ParametricForm` and ``solve_sweep``
is element-wise agreement with the cold path: a patched form must be
*bitwise* identical to a fresh compile at that budget, and a swept
solve must match independent cold solves — objectives to 1e-9 and
plans exactly equal after rounding.  (Raw variable vectors are a
solver-internal detail; the simplex tie-break pricing makes them agree
in practice, but the contract is stated over objectives and plans.)
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.lp import (
    ScipyBackend,
    SimplexBackend,
    compile_lp_lf,
    compile_lp_no_lf,
    compile_lp_lf_parametric,
    compile_lp_no_lf_parametric,
    compile_proof_parametric,
)
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.planners.proof import ProofPlanner
from tests.lp.test_fastbuild import make_context

# Proof budgets must stay above the minimum certified cost (the context
# budget is minimum * 1.5), so the ladder keeps every factor >= 0.7.
_FACTORS = (0.7, 0.85, 1.0, 1.2, 1.5, 2.0)


def _parametric_for(planner_key, context):
    if planner_key == "proof":
        planner = ProofPlanner()
        reserve = planner._reserve(context)
        acquisition = planner._acquisition_total(context)
        return compile_proof_parametric(
            context,
            budget_rhs_of=lambda budget: budget - reserve - acquisition,
        )
    if planner_key == "lp-lf":
        return compile_lp_lf_parametric(context)
    return compile_lp_no_lf_parametric(context)


def _cold_compile(planner_key, context):
    if planner_key == "proof":
        return ProofPlanner().compile_fast(context)
    if planner_key == "lp-lf":
        return compile_lp_lf(context)
    return compile_lp_no_lf(context)


def _budgets(context):
    return [context.budget * factor for factor in _FACTORS]


class TestParametricForm:
    @pytest.mark.parametrize("planner_key", ["lp-no-lf", "lp-lf", "proof"])
    @pytest.mark.parametrize("seed,n,m,k", [(0, 8, 5, 3), (1, 14, 8, 4)])
    def test_patched_form_bitwise_equals_cold_compile(
        self, planner_key, seed, n, m, k
    ):
        context = make_context(seed, n, m, k, planner_key=planner_key)
        parametric = _parametric_for(planner_key, context)
        for budget in _budgets(context):
            patched = parametric.form_for(budget)
            cold = _cold_compile(
                planner_key, replace(context, budget=budget)
            ).form
            assert np.array_equal(patched.c, cold.c)
            assert np.array_equal(patched.b_ub, cold.b_ub)
            assert np.array_equal(patched.b_eq, cold.b_eq)
            assert patched.bounds == cold.bounds
            assert np.array_equal(patched.a_ub.indptr, cold.a_ub.indptr)
            assert np.array_equal(patched.a_ub.indices, cold.a_ub.indices)
            assert np.array_equal(patched.a_ub.data, cold.a_ub.data)

    def test_only_the_rhs_slot_changes(self):
        context = make_context(2, 10, 6, 3)
        parametric = compile_lp_lf_parametric(context)
        base = parametric.form.b_ub.copy()
        patched = parametric.form_for(context.budget * 1.7)
        delta = np.flatnonzero(patched.b_ub != base)
        assert list(delta) == [parametric.row]

    def test_rhs_values_match_form_for(self):
        context = make_context(3, 9, 5, 3)
        parametric = compile_lp_no_lf_parametric(context)
        budgets = _budgets(context)
        rhs = parametric.rhs_values(budgets)
        for value, budget in zip(rhs, budgets):
            assert value == parametric.form_for(budget).b_ub[parametric.row]


class TestSweepEquivalence:
    """Property sweep over random topologies: ``plan_for_budgets`` must
    be element-wise identical to per-budget cold planning, on every
    formulation and both backends."""

    PLANNERS = {
        "lp-no-lf": LPNoLFPlanner,
        "lp-lf": LPLFPlanner,
        "proof": ProofPlanner,
    }

    @pytest.mark.parametrize("backend", ["simplex", "scipy"])
    @pytest.mark.parametrize("planner_key", sorted(PLANNERS))
    @pytest.mark.parametrize("seed,n,m,k", [
        (0, 6, 4, 2),
        (1, 12, 6, 3),
        (2, 18, 9, 5),
        (3, 30, 10, 10),
    ])
    def test_sweep_plans_equal_cold_plans(
        self, backend, planner_key, seed, n, m, k
    ):
        context = make_context(seed, n, m, k, planner_key=planner_key)
        budgets = _budgets(context)
        cls = self.PLANNERS[planner_key]
        swept = cls(backend=backend).plan_for_budgets(context, budgets)
        assert len(swept) == len(budgets)
        for budget, sweep_plan in zip(budgets, swept):
            cold_plan = cls(backend=backend).plan(
                replace(context, budget=budget)
            )
            assert sweep_plan.bandwidths == cold_plan.bandwidths

    @pytest.mark.parametrize("backend_cls", [SimplexBackend, ScipyBackend])
    @pytest.mark.parametrize("planner_key", sorted(PLANNERS))
    def test_sweep_objectives_match_cold_solves(self, backend_cls, planner_key):
        context = make_context(4, 16, 8, 5, planner_key=planner_key)
        budgets = _budgets(context)
        backend = backend_cls()
        parametric = _parametric_for(planner_key, context)
        members = backend.solve_sweep(
            parametric, parametric.rhs_values(budgets)
        )
        for budget, member in zip(budgets, members):
            cold = _cold_compile(planner_key, replace(context, budget=budget))
            reference = backend.solve_form(cold.form, cold.name)
            assert member.objective == pytest.approx(
                reference.objective, abs=1e-9 * max(1.0, abs(reference.objective))
            )

    def test_algebraic_compiler_falls_back_to_plan_loop(self):
        context = make_context(5, 8, 5, 3)
        planner = LPLFPlanner(compiler="algebraic")
        budgets = _budgets(context)
        swept = planner.plan_for_budgets(context, budgets)
        for budget, plan in zip(budgets, swept):
            cold = LPLFPlanner(compiler="algebraic").plan(
                replace(context, budget=budget)
            )
            assert plan.bandwidths == cold.bandwidths


class TestSweepStats:
    def test_simplex_members_report_warm_starts(self):
        context = make_context(6, 14, 8, 4)
        backend = SimplexBackend()
        parametric = compile_lp_lf_parametric(context)
        members = backend.solve_sweep(
            parametric, parametric.rhs_values(_budgets(context))
        )
        assert members[0].stats.warm_started is False
        assert any(m.stats.warm_started for m in members[1:])
        assert all(m.stats.pivots >= 0 for m in members)
        assert all(m.stats.backend == "pure-simplex" for m in members)

    def test_scipy_members_are_never_warm(self):
        context = make_context(6, 14, 8, 4)
        backend = ScipyBackend()
        parametric = compile_lp_lf_parametric(context)
        members = backend.solve_sweep(
            parametric, parametric.rhs_values(_budgets(context))
        )
        assert all(m.stats.warm_started is False for m in members)
