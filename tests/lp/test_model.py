"""Unit tests for the LP model container."""

import pytest

from repro.errors import ModelError, SolverError
from repro.lp import Model


class TestModelBasics:
    def test_counts(self):
        m = Model()
        x, y = m.add_variables(["x", "y"])
        m.add_constraint(x + y <= 1)
        assert m.num_variables == 2
        assert m.num_constraints == 1

    def test_constraint_naming(self):
        m = Model()
        x = m.add_variable("x")
        c = m.add_constraint(x <= 1, name="cap")
        assert c.name == "cap"

    def test_add_constraint_rejects_non_constraint(self):
        m = Model()
        with pytest.raises(ModelError, match="Constraint"):
            m.add_constraint(True)  # 1 <= 2 evaluates to a bool

    def test_objective_required_to_solve(self):
        m = Model()
        m.add_variable("x")
        with pytest.raises(ModelError, match="objective"):
            m.solve()

    def test_objective_accepts_variable_and_scalar(self):
        m = Model()
        x = m.add_variable("x", ub=2.0)
        m.maximize(x)
        assert m.solve().objective == pytest.approx(2.0)
        m.minimize(0)
        assert m.solve().objective == pytest.approx(0.0)

    def test_foreign_expression_rejected(self):
        m1, m2 = Model("a"), Model("b")
        x = m1.add_variable("x")
        with pytest.raises(ModelError, match="belongs"):
            m2.add_constraint(x <= 1)
        with pytest.raises(ModelError, match="belongs"):
            m2.minimize(x + 0)

    def test_repr_mentions_shape(self):
        m = Model("demo")
        m.add_variable("x")
        assert "demo" in repr(m) and "vars=1" in repr(m)


class TestSolving:
    def test_simple_maximization(self):
        m = Model()
        x = m.add_variable("x", lb=0, ub=4)
        y = m.add_variable("y", lb=0, ub=4)
        m.add_constraint(x + y <= 6)
        m.maximize(2 * x + y)
        sol = m.solve()
        assert sol.objective == pytest.approx(10.0)
        assert sol.value(x) == pytest.approx(4.0)
        assert sol.value(y) == pytest.approx(2.0)
        assert sol[x] == pytest.approx(4.0)

    def test_objective_constant_is_reported(self):
        m = Model()
        x = m.add_variable("x", ub=1.0)
        m.maximize(x + 10)
        assert m.solve().objective == pytest.approx(11.0)

    def test_expression_value_from_solution(self):
        m = Model()
        x = m.add_variable("x", ub=3.0)
        m.maximize(x)
        sol = m.solve()
        assert sol.value(2 * x + 1) == pytest.approx(7.0)

    def test_infeasible_raises(self):
        m = Model()
        x = m.add_variable("x", lb=0.0)
        m.add_constraint(x <= -1)
        m.minimize(x)
        with pytest.raises(SolverError) as err:
            m.solve()
        assert err.value.status == "infeasible"

    def test_unbounded_raises(self):
        m = Model()
        x = m.add_variable("x", lb=0.0)
        m.maximize(x)
        with pytest.raises(SolverError):
            m.solve()

    def test_equality_constraints(self):
        m = Model()
        x, y = m.add_variables(["x", "y"])
        m.add_constraint(x + y == 4)
        m.add_constraint(x - y == 2)
        m.minimize(x + y)
        sol = m.solve()
        assert sol.value(x) == pytest.approx(3.0)
        assert sol.value(y) == pytest.approx(1.0)

    def test_solution_satisfies_all_constraints(self):
        m = Model()
        x, y, z = m.add_variables(["x", "y", "z"])
        m.add_constraint(x + 2 * y + z <= 10)
        m.add_constraint(x - y >= -2)
        m.add_constraint(y + z == 5)
        m.maximize(x + y + z)
        sol = m.solve()
        for constraint in m.constraints:
            assert constraint.is_satisfied(sol.values)

    def test_stats_populated(self):
        m = Model()
        x = m.add_variable("x", ub=1.0)
        m.maximize(x)
        sol = m.solve()
        assert sol.stats.backend == "scipy-highs"
        assert sol.stats.num_variables == 1
        assert sol.stats.wall_seconds >= 0.0
