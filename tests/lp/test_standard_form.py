"""Unit tests for the model -> standard-form compiler."""

import numpy as np
import pytest

from repro.lp import Model
from repro.lp.standard_form import compile_model


def test_senses_routed_to_correct_blocks():
    m = Model()
    x, y = m.add_variables(["x", "y"])
    m.add_constraint(x + y <= 3)
    m.add_constraint(x - y >= 1)
    m.add_constraint(x + 2 * y == 5)
    m.minimize(x)
    form = compile_model(m)
    assert form.a_ub.shape == (2, 2)
    assert form.a_eq.shape == (1, 2)
    # the >= row is negated into <=
    np.testing.assert_allclose(form.a_ub.toarray()[1], [-1.0, 1.0])
    assert form.b_ub[1] == pytest.approx(-1.0)
    np.testing.assert_allclose(form.a_eq.toarray()[0], [1.0, 2.0])


def test_maximize_negates_costs_and_reports_back():
    m = Model()
    x = m.add_variable("x", ub=2.0)
    m.maximize(3 * x + 1)
    form = compile_model(m)
    assert form.maximize
    np.testing.assert_allclose(form.c, [-3.0])
    # minimized value of -3x at x=2 is -6; reported = -(-6 + -1) = 7
    assert form.report_objective(-6.0) == pytest.approx(7.0)


def test_bounds_passed_through():
    m = Model()
    m.add_variable("a")                 # [0, None]
    m.add_variable("b", lb=None)        # free
    m.add_variable("c", lb=-1, ub=2)
    m.minimize(0)
    form = compile_model(m)
    assert form.bounds == [(0.0, None), (None, None), (-1, 2)]


def test_empty_constraint_blocks():
    m = Model()
    x = m.add_variable("x", ub=1.0)
    m.minimize(x)
    form = compile_model(m)
    assert form.a_ub.shape[0] == 0
    assert form.a_eq.shape[0] == 0
    assert form.num_variables == 1


def test_minimize_reports_constant():
    m = Model()
    x = m.add_variable("x", ub=1.0)
    m.minimize(x + 5)
    form = compile_model(m)
    assert not form.maximize
    assert form.report_objective(0.0) == pytest.approx(5.0)
