"""Unit tests for LP expressions and variables."""

import pytest

from repro.errors import ModelError
from repro.lp import LinExpr, Model


@pytest.fixture
def model():
    return Model("t")


class TestVariable:
    def test_to_expr_single_term(self, model):
        x = model.add_variable("x")
        expr = x.to_expr()
        assert expr.terms == {0: 1.0}
        assert expr.constant == 0.0

    def test_duplicate_name_rejected(self, model):
        model.add_variable("x")
        with pytest.raises(ModelError, match="duplicate"):
            model.add_variable("x")

    def test_bad_bounds_rejected(self, model):
        with pytest.raises(ModelError, match="lb"):
            model.add_variable("x", lb=2.0, ub=1.0)

    def test_lookup_by_name(self, model):
        x = model.add_variable("x")
        assert model.variable("x") is x
        with pytest.raises(ModelError):
            model.variable("nope")

    def test_repr(self, model):
        assert "x" in repr(model.add_variable("x"))


class TestArithmetic:
    def test_addition_merges_terms(self, model):
        x, y = model.add_variables(["x", "y"])
        expr = x + y + x
        assert expr.terms == {0: 2.0, 1: 1.0}

    def test_scalar_multiplication(self, model):
        x = model.add_variable("x")
        expr = 3 * x
        assert expr.terms == {0: 3.0}
        assert (x * 3).terms == {0: 3.0}

    def test_subtraction_and_negation(self, model):
        x, y = model.add_variables(["x", "y"])
        expr = x - y
        assert expr.terms == {0: 1.0, 1: -1.0}
        assert (-x).terms == {0: -1.0}

    def test_rsub_with_constant(self, model):
        x = model.add_variable("x")
        expr = 5 - x
        assert expr.terms == {0: -1.0}
        assert expr.constant == 5.0

    def test_constants_accumulate(self, model):
        x = model.add_variable("x")
        expr = x + 1 + 2.5
        assert expr.constant == 3.5

    def test_sum_of_is_linear_time_shape(self, model):
        xs = model.add_variables([f"x{i}" for i in range(50)])
        expr = LinExpr.sum_of(xs)
        assert len(expr.terms) == 50
        assert all(c == 1.0 for c in expr.terms.values())

    def test_sum_of_mixed_items(self, model):
        x, y = model.add_variables(["x", "y"])
        expr = LinExpr.sum_of([x, 2.0 * y, 3, x + 1])
        assert expr.terms == {0: 2.0, 1: 2.0}
        assert expr.constant == 4.0

    def test_scaling_non_number_rejected(self, model):
        x = model.add_variable("x")
        with pytest.raises(TypeError):
            x.to_expr() * "two"

    def test_adding_junk_rejected(self, model):
        x = model.add_variable("x")
        with pytest.raises(TypeError):
            x.to_expr() + "junk"

    def test_mixing_models_rejected(self):
        m1, m2 = Model("a"), Model("b")
        x = m1.add_variable("x")
        y = m2.add_variable("y")
        with pytest.raises(ModelError, match="different models"):
            __ = x + y

    def test_evaluate(self, model):
        x, y = model.add_variables(["x", "y"])
        expr = 2 * x - y + 1
        assert expr.evaluate([3.0, 4.0]) == pytest.approx(3.0)

    def test_copy_is_independent(self, model):
        x = model.add_variable("x")
        expr = x + 1
        clone = expr.copy()
        clone._iadd(x)
        assert expr.terms == {0: 1.0}


class TestComparisonsBuildConstraints:
    def test_le(self, model):
        x = model.add_variable("x")
        c = x <= 5
        assert c.sense == "<=" and c.rhs == 5.0

    def test_ge(self, model):
        x = model.add_variable("x")
        c = x >= 2
        assert c.sense == ">=" and c.rhs == 2.0

    def test_eq(self, model):
        x = model.add_variable("x")
        c = x.to_expr() == 7
        assert c.sense == "==" and c.rhs == 7.0

    def test_rhs_expression_folded_left(self, model):
        x, y = model.add_variables(["x", "y"])
        c = x + 1 <= y + 4
        assert c.expr.terms == {0: 1.0, 1: -1.0}
        assert c.rhs == pytest.approx(3.0)

    def test_is_satisfied(self, model):
        x, y = model.add_variables(["x", "y"])
        c = x + y <= 3
        assert c.is_satisfied([1.0, 1.0])
        assert not c.is_satisfied([2.0, 2.0])
        eq = x.to_expr() == 1
        assert eq.is_satisfied([1.0, 0.0])
        assert not eq.is_satisfied([1.1, 0.0])
        ge = x >= 1
        assert ge.is_satisfied([1.0, 0.0])
        assert not ge.is_satisfied([0.5, 0.0])
