"""Integration + property tests for generalized subset queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SamplingError
from repro.network.builder import random_topology, star_topology
from repro.network.energy import EnergyModel
from repro.plans.execution import count_topk_hits, execute_plan
from repro.plans.plan import QueryPlan
from repro.queries import (
    AnswerMatrix,
    QuantileQuery,
    SelectionQuery,
    SubsetQueryPlanner,
    TopKQuery,
    run_subset_query,
)
from repro.simulation.runtime import Simulator
from tests.conftest import tree_plan_readings

UNIFORM = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.2)


class TestAnswerMatrix:
    def test_interface_matches_sample_matrix(self):
        values = np.array([[5, 1, 9], [1, 8, 2.0]])
        matrix = AnswerMatrix(values, TopKQuery(1))
        assert matrix.num_samples == 2 and matrix.num_nodes == 3
        assert matrix.ones(0) == frozenset({2})
        assert matrix.column_counts().tolist() == [0, 1, 1]
        assert matrix.max_answer_size() == 1
        assert "top-k" in repr(matrix)

    def test_selection_matrix(self):
        values = np.array([[5, 1, 9], [1, 8, 2.0]])
        matrix = AnswerMatrix(values, SelectionQuery(threshold=4.0))
        assert matrix.ones(0) == frozenset({0, 2})
        assert matrix.ones(1) == frozenset({1})

    def test_shape_validation(self):
        with pytest.raises(SamplingError):
            AnswerMatrix(np.zeros(3), TopKQuery(1))


class TestSelectionPlanning:
    def test_planner_finds_hot_nodes(self):
        topo = star_topology(6)
        rng = np.random.default_rng(0)
        samples = np.full((10, 6), 10.0) + rng.normal(0, 0.1, (10, 6))
        samples[:, 2] = 50.0  # node 2 always fires the predicate
        samples[:, 4] = 50.0
        spec = SelectionQuery(threshold=40.0)
        planner = SubsetQueryPlanner(spec)
        plan = planner.plan(topo, UNIFORM, samples, budget=3.0)
        assert plan.bandwidth(2) >= 1
        assert plan.bandwidth(4) >= 1

    def test_budget_respected(self):
        topo = random_topology(25, rng=np.random.default_rng(1), radio_range=35.0)
        rng = np.random.default_rng(2)
        samples = rng.normal(10, 4, size=(12, 25))
        spec = SelectionQuery(threshold=14.0)
        for budget in (5.0, 12.0):
            plan = SubsetQueryPlanner(spec).plan(topo, UNIFORM, samples, budget)
            assert plan.static_cost(UNIFORM) <= budget + 1e-9

    def test_unsatisfiable_spec_rejected(self):
        topo = star_topology(3)
        samples = np.zeros((4, 3))
        spec = SelectionQuery(threshold=99.0)
        with pytest.raises(SamplingError, match="non-empty"):
            SubsetQueryPlanner(spec).plan(topo, UNIFORM, samples, budget=5.0)

    def test_run_subset_query_scores_recall(self):
        topo = star_topology(5)
        samples = np.tile([0.0, 50, 1, 50, 1], (6, 1))
        spec = SelectionQuery(threshold=40.0)
        plan = SubsetQueryPlanner(spec).plan(topo, UNIFORM, samples, budget=4.0)
        simulator = Simulator(topo, UNIFORM)
        readings = np.array([0.0, 50, 1, 50, 1])
        result = run_subset_query(simulator, plan, spec, readings)
        assert result.recall == 1.0
        assert {n for __, n in result.answer} == {1, 3}
        assert result.report.energy_mj > 0


class TestQuantilePlanning:
    def test_priority_execution_beats_value_order(self):
        """Without target-aware forwarding, maxima crowd out the median
        band at narrow bandwidths."""
        from repro.network.builder import line_topology

        topo = line_topology(9)  # deep chain, narrow bandwidth below
        rng = np.random.default_rng(3)
        samples = rng.normal(20, 5, size=(30, 9))
        spec = QuantileQuery(phi=0.5, band=1)

        bandwidths = {e: 3 for e in topo.edges}
        plan = QueryPlan(topo, bandwidths)
        priority = spec.forward_priority(samples)

        wins = ties = losses = 0
        for __ in range(40):
            readings = rng.normal(20, 5, size=9)
            truth = spec.answer_nodes(readings)
            aware = execute_plan(plan, readings, priority=priority)
            naive = execute_plan(plan, readings)
            aware_hits = len(aware.returned_nodes & truth)
            naive_hits = len(naive.returned_nodes & truth)
            if aware_hits > naive_hits:
                wins += 1
            elif aware_hits == naive_hits:
                ties += 1
            else:
                losses += 1
        assert wins > losses

    def test_end_to_end_quantile_query(self):
        topo = random_topology(20, rng=np.random.default_rng(4), radio_range=40.0)
        rng = np.random.default_rng(5)
        samples = rng.normal(15, 3, size=(20, 20))
        spec = QuantileQuery(phi=0.9, band=1)
        plan = SubsetQueryPlanner(spec).plan(topo, UNIFORM, samples, budget=15.0)
        simulator = Simulator(topo, UNIFORM)
        readings = rng.normal(15, 3, size=20)
        result = run_subset_query(
            simulator, plan, spec, readings, samples=samples
        )
        assert 0.0 <= result.recall <= 1.0


@settings(max_examples=100, deadline=None)
@given(tree_plan_readings(), st.integers(min_value=-20, max_value=20))
def test_selection_hits_match_tree_recursion(data, threshold):
    """Selection answers are up-closed, so the analytic recursion on
    delivered answer nodes is exact — same law as for top-k."""
    topology, bandwidths, readings = data
    plan = QueryPlan(topology, bandwidths)
    spec = SelectionQuery(threshold=float(threshold))
    truth = set(spec.answer_nodes(readings))
    result = execute_plan(plan, readings)
    executed = len(result.returned_nodes & truth)
    assert executed == count_topk_hits(plan, truth)
