"""Tests for cluster top-k queries (the paper's intro refinement)."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.network.builder import zone_members, zoned_topology
from repro.network.energy import EnergyModel
from repro.plans.execution import execute_plan
from repro.plans.plan import QueryPlan
from repro.queries import ClusterTopKQuery, SubsetQueryPlanner, run_subset_query
from repro.simulation.runtime import Simulator

UNIFORM = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.2)


@pytest.fixture
def spec():
    return ClusterTopKQuery({"a": [1, 2], "b": [3, 4], "c": [5, 6]}, k=2)


class TestValidation:
    def test_rejects_bad_k(self):
        with pytest.raises(PlanError):
            ClusterTopKQuery({"a": [1]}, k=0)
        with pytest.raises(PlanError, match="exceeds"):
            ClusterTopKQuery({"a": [1]}, k=2)

    def test_rejects_empty_or_overlapping(self):
        with pytest.raises(PlanError, match="empty"):
            ClusterTopKQuery({"a": []}, k=1)
        with pytest.raises(PlanError, match="disjoint"):
            ClusterTopKQuery({"a": [1], "b": [1, 2]}, k=1)
        with pytest.raises(PlanError):
            ClusterTopKQuery({}, k=1)


class TestScoring:
    def test_cluster_scores(self, spec):
        readings = [0, 10, 20, 5, 5, 1, 1]
        scores = spec.cluster_scores(readings)
        assert scores == {"a": 15.0, "b": 5.0, "c": 1.0}

    def test_top_clusters_and_answer(self, spec):
        readings = [0, 10, 20, 5, 5, 1, 1]
        assert spec.top_clusters(readings) == ["a", "b"]
        assert spec.answer_nodes(readings) == {1, 2, 3, 4}

    def test_tie_broken_by_name(self):
        spec = ClusterTopKQuery({"x": [1], "y": [2]}, k=1)
        assert spec.top_clusters([0, 5, 5]) == ["x"]

    def test_low_value_in_strong_cluster_contributes(self, spec):
        # node 1 reads tiny but its cluster still wins on the average
        readings = [0, 1, 100, 5, 5, 1, 1]
        assert 1 in spec.answer_nodes(readings)


class TestExecution:
    def test_priority_prefers_strong_clusters(self, spec):
        samples = [[0, 10, 10, 2, 2, 1, 1]] * 3
        priority = spec.forward_priority(samples)
        # a weak member of the strong cluster beats a strong member of
        # a weak cluster
        assert priority((0.5, 1)) > priority((50.0, 5))

    def test_priority_requires_samples(self, spec):
        with pytest.raises(PlanError):
            spec.forward_priority()

    def test_answered_clusters(self, spec):
        assert spec.answered_clusters({1, 2, 5}) == ["a"]
        assert spec.answered_clusters(set()) == []

    def test_cluster_aware_forwarding_keeps_clusters_whole(self):
        """Narrow bandwidth: value-order forwarding splits clusters;
        cluster-aware forwarding delivers whole winners."""
        topo = zoned_topology(2, zone_size=3, relay_hops=2)
        zones = zone_members(2, zone_size=3, relay_hops=2)
        spec = ClusterTopKQuery({"z0": zones[0], "z1": zones[1]}, k=1)
        # z0 wins on average, but z1 holds the single largest value
        readings = np.zeros(topo.n)
        readings[zones[0]] = [30.0, 29.0, 28.0]
        readings[zones[1]] = [50.0, 1.0, 1.0]
        samples = [readings.tolist()] * 4

        # squeeze the shared relay edges to 3 values each
        bandwidths = dict(QueryPlan.full(topo).bandwidths)
        for zone in zones:
            head_path = topo.path_edges(zone[0])
            for edge in head_path[1:]:
                bandwidths[edge] = 3
        plan = QueryPlan(topo, bandwidths)

        aware = execute_plan(
            plan, readings, priority=spec.forward_priority(samples)
        )
        assert spec.answered_clusters(aware.returned_nodes) != []
        assert "z0" in spec.answered_clusters(aware.returned_nodes)


class TestPlanning:
    def test_end_to_end_on_zones(self):
        topo = zoned_topology(3, zone_size=4, relay_hops=2)
        zones = zone_members(3, zone_size=4, relay_hops=2)
        spec = ClusterTopKQuery(
            {f"z{i}": zone for i, zone in enumerate(zones)}, k=1
        )
        rng = np.random.default_rng(0)
        base = np.zeros(topo.n)
        base[zones[0]] = 40.0  # zone 0 is reliably the best
        base[zones[1]] = 20.0
        base[zones[2]] = 10.0
        samples = base + rng.normal(0, 1.0, size=(10, topo.n))

        plan = SubsetQueryPlanner(spec).plan(
            topo, UNIFORM, samples, budget=12.0
        )
        simulator = Simulator(topo, UNIFORM)
        readings = base + rng.normal(0, 1.0, size=topo.n)
        result = run_subset_query(
            simulator, plan, spec, readings, samples=samples
        )
        assert result.recall == 1.0
        assert spec.answered_clusters(
            {n for __, n in result.report.returned}
        ) == ["z0"]


class TestWholeClusterPlanner:
    def test_admits_best_clusters_within_budget(self):
        from repro.network.energy import EnergyModel
        from repro.queries.clusters import plan_whole_clusters

        energy = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.2)
        topo = zoned_topology(3, zone_size=4, relay_hops=2)
        zones = zone_members(3, zone_size=4, relay_hops=2)
        spec = ClusterTopKQuery(
            {f"z{i}": zone for i, zone in enumerate(zones)}, k=2
        )
        samples = np.zeros((5, topo.n))
        samples[:, zones[1]] = 30.0   # z1 best
        samples[:, zones[0]] = 20.0   # z0 second
        samples[:, zones[2]] = 10.0

        # enough for two whole zones, not three
        plan, admitted = plan_whole_clusters(
            spec, topo, energy, samples, budget=22.0
        )
        assert admitted == ["z1", "z0"]
        for zone_name in admitted:
            for member in spec.clusters[zone_name]:
                assert member in plan.visited_nodes
        assert plan.static_cost(energy) <= 22.0

    def test_stops_at_k_clusters(self):
        from repro.network.energy import EnergyModel
        from repro.queries.clusters import plan_whole_clusters

        energy = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.0)
        topo = zoned_topology(3, zone_size=2, relay_hops=1)
        zones = zone_members(3, zone_size=2, relay_hops=1)
        spec = ClusterTopKQuery(
            {f"z{i}": zone for i, zone in enumerate(zones)}, k=1
        )
        samples = np.ones((3, topo.n))
        __, admitted = plan_whole_clusters(
            spec, topo, energy, samples, budget=1e9
        )
        assert len(admitted) == 1  # no point paying for more than k

    def test_tiny_budget_admits_nothing(self):
        from repro.network.energy import EnergyModel
        from repro.queries.clusters import plan_whole_clusters

        energy = EnergyModel.uniform(per_message_mj=1.0, per_value_mj=0.2)
        topo = zoned_topology(2, zone_size=3, relay_hops=2)
        zones = zone_members(2, zone_size=3, relay_hops=2)
        spec = ClusterTopKQuery(
            {f"z{i}": zone for i, zone in enumerate(zones)}, k=1
        )
        samples = np.ones((2, topo.n))
        plan, admitted = plan_whole_clusters(
            spec, topo, energy, samples, budget=0.5
        )
        assert admitted == []
        assert plan.used_edges == []
