"""Unit tests for query specifications."""

import pytest

from repro.errors import PlanError
from repro.queries import QuantileQuery, SelectionQuery, TopKQuery


class TestTopKQuery:
    def test_answer(self):
        spec = TopKQuery(2)
        assert spec.answer_nodes([5.0, 9.0, 1.0, 7.0]) == {1, 3}

    def test_answer_readings_sorted(self):
        spec = TopKQuery(2)
        assert spec.answer_readings([5.0, 9.0, 1.0, 7.0]) == [(9.0, 1), (7.0, 3)]

    def test_validation(self):
        with pytest.raises(PlanError):
            TopKQuery(0)

    def test_up_closed(self):
        assert TopKQuery(3).up_closed
        assert TopKQuery(3).forward_priority() is None


class TestSelectionQuery:
    def test_answer_strictly_above(self):
        spec = SelectionQuery(threshold=5.0)
        assert spec.answer_nodes([5.0, 6.0, 4.9, 5.1]) == {1, 3}

    def test_empty_answer_possible(self):
        spec = SelectionQuery(threshold=100.0)
        assert spec.answer_nodes([1.0, 2.0]) == frozenset()

    def test_recall_with_empty_truth_is_one(self):
        spec = SelectionQuery(threshold=100.0)
        assert spec.recall(set(), [1.0, 2.0]) == 1.0
        assert spec.recall({0}, [1.0, 2.0]) == 1.0

    def test_recall_partial(self):
        spec = SelectionQuery(threshold=0.0)
        assert spec.recall({0}, [1.0, 2.0]) == 0.5

    def test_expected_answer_size(self):
        spec = SelectionQuery(threshold=1.5)
        rows = [[1.0, 2.0], [2.0, 2.0]]
        assert spec.expected_answer_size(rows) == pytest.approx(1.5)
        with pytest.raises(PlanError):
            spec.expected_answer_size([])


class TestQuantileQuery:
    def test_validation(self):
        with pytest.raises(PlanError):
            QuantileQuery(phi=1.5)
        with pytest.raises(PlanError):
            QuantileQuery(phi=0.5, band=-1)

    def test_median_band(self):
        spec = QuantileQuery(phi=0.5, band=1)
        # ascending ranks of [40, 10, 30, 20, 50]: 10<20<30<40<50;
        # median is 30 (node 2); band-1 neighbourhood adds 20 and 40
        assert spec.answer_nodes([40.0, 10.0, 30.0, 20.0, 50.0]) == {0, 2, 3}

    def test_extreme_quantiles(self):
        readings = [1.0, 2.0, 3.0, 4.0]
        assert QuantileQuery(phi=1.0, band=0).answer_nodes(readings) == {3}
        assert QuantileQuery(phi=0.0, band=0).answer_nodes(readings) == {0}

    def test_not_up_closed(self):
        assert not QuantileQuery(phi=0.5).up_closed

    def test_target_estimation(self):
        spec = QuantileQuery(phi=0.5)
        assert spec.estimate_target_value([[1.0, 3.0], [1.0, 3.0]]) == 2.0
        with pytest.raises(PlanError):
            spec.estimate_target_value([])

    def test_priority_prefers_near_target(self):
        spec = QuantileQuery(phi=0.5)
        priority = spec.forward_priority([[0.0, 10.0]])  # target 5.0
        assert priority((5.0, 0)) > priority((9.0, 1))
        assert priority((4.0, 0)) > priority((0.0, 1))

    def test_priority_requires_samples(self):
        with pytest.raises(PlanError):
            QuantileQuery(phi=0.5).forward_priority()
