"""Unit tests for the two-stage stochastic Steiner tree."""

import pytest

from repro.errors import BudgetError, ModelError
from repro.network.builder import line_topology, star_topology
from repro.stochastic.scenarios import ScenarioSet
from repro.stochastic.steiner import TwoStageSteinerTree


class TestConstruction:
    def test_validation(self, small_tree):
        with pytest.raises(ModelError):
            TwoStageSteinerTree(small_tree, inflation=0.0)
        with pytest.raises(ModelError):
            TwoStageSteinerTree(small_tree, edge_costs={1: -1.0})

    def test_default_unit_costs(self, small_tree):
        problem = TwoStageSteinerTree(small_tree)
        assert all(c == 1.0 for c in problem.edge_costs.values())


class TestTotalCost:
    def test_certain_demand_bought_up_front(self):
        """A node demanded in every scenario should be connected on
        day 1 when day 2 is more expensive."""
        topo = line_topology(4)
        problem = TwoStageSteinerTree(topo, inflation=3.0)
        scenarios = ScenarioSet([{3}, {3}, {3}])
        solution = problem.solve_total_cost(scenarios)
        assert solution.first_stage_edges == {1, 2, 3}
        assert solution.expected_second_stage_cost == 0.0
        assert solution.total_expected_cost == pytest.approx(3.0)

    def test_rare_demand_deferred(self):
        """A node demanded once in many scenarios is cheaper to connect
        on day 2 despite the inflation."""
        topo = star_topology(3)
        problem = TwoStageSteinerTree(topo, inflation=2.0)
        scenarios = ScenarioSet([{1}] * 9 + [{2}])
        solution = problem.solve_total_cost(scenarios)
        assert 1 in solution.first_stage_edges
        assert 2 not in solution.first_stage_edges
        # recourse: scenario {2} pays 2.0 with probability 1/10
        assert solution.expected_second_stage_cost == pytest.approx(0.2)

    def test_breakeven_probability(self):
        """Buying up front wins iff demand probability > 1/inflation."""
        topo = star_topology(2)
        problem = TwoStageSteinerTree(topo, inflation=4.0)
        frequent = ScenarioSet([{1}] * 2 + [frozenset()] * 2)  # p = 1/2
        rare = ScenarioSet([{1}] + [frozenset()] * 9)          # p = 1/10
        assert 1 in problem.solve_total_cost(frequent).first_stage_edges
        assert 1 not in problem.solve_total_cost(rare).first_stage_edges

    def test_shared_path_amortized(self, small_tree):
        """Scenarios in one subtree share the relay edge purchase."""
        problem = TwoStageSteinerTree(small_tree, inflation=2.0)
        scenarios = ScenarioSet([{3}, {4}, {3, 4}])
        solution = problem.solve_total_cost(scenarios)
        assert 1 in solution.first_stage_edges  # the shared relay edge

    def test_lp_objective_lower_bounds_rounded(self):
        topo = star_topology(5)
        problem = TwoStageSteinerTree(topo, inflation=1.5)
        scenarios = ScenarioSet([{1, 2}, {3}, {2, 4}])
        solution = problem.solve_total_cost(scenarios)
        assert solution.lp_objective <= solution.total_expected_cost + 1e-9


class TestBudgeted:
    def test_budget_zero_buys_nothing(self):
        topo = star_topology(3)
        problem = TwoStageSteinerTree(topo, inflation=1.0)
        scenarios = ScenarioSet([{1}, {2}])
        solution = problem.solve_budgeted(scenarios, first_stage_budget=0.0)
        assert solution.first_stage_edges == frozenset()
        assert solution.expected_second_stage_cost == pytest.approx(1.0)

    def test_budget_prefers_frequent_demands(self):
        topo = star_topology(4)
        problem = TwoStageSteinerTree(topo, inflation=1.0)
        scenarios = ScenarioSet([{1, 2}, {1, 3}, {1, 2}])
        solution = problem.solve_budgeted(scenarios, first_stage_budget=2.0)
        assert 1 in solution.first_stage_edges  # demanded every time
        assert 2 in solution.first_stage_edges  # demanded twice
        assert solution.first_stage_cost <= 2.0

    def test_negative_budget_rejected(self):
        topo = star_topology(2)
        problem = TwoStageSteinerTree(topo)
        with pytest.raises(BudgetError):
            problem.solve_budgeted(ScenarioSet([{1}]), -1.0)

    def test_generous_budget_eliminates_recourse(self, small_tree):
        problem = TwoStageSteinerTree(small_tree, inflation=2.0)
        scenarios = ScenarioSet([{3, 6}, {4}])
        solution = problem.solve_budgeted(scenarios, first_stage_budget=10.0)
        assert solution.expected_second_stage_cost == 0.0
