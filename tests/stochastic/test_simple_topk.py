"""Tests for SIMPLE-TOP-K and the Theorem 1 reduction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BudgetError
from repro.stochastic.scenarios import ScenarioSet
from repro.stochastic.simple_topk import (
    SimpleTopKInstance,
    expected_misses,
    sample_complexity_curve,
    solve_direct,
    solve_via_steiner,
)


class TestInstanceValidation:
    def test_bounds(self):
        scenarios = ScenarioSet([{0}])
        with pytest.raises(BudgetError):
            SimpleTopKInstance(0, scenarios, 0)
        with pytest.raises(BudgetError):
            SimpleTopKInstance(2, scenarios, 3)
        with pytest.raises(BudgetError):
            SimpleTopKInstance(2, ScenarioSet([{5}]), 1)


class TestDirect:
    def test_picks_highest_counts(self):
        scenarios = ScenarioSet([{0, 1}, {1, 2}, {1, 3}])
        instance = SimpleTopKInstance(4, scenarios, budget=1)
        solution = solve_direct(instance)
        assert solution.chosen == {1}
        assert solution.expected_misses == pytest.approx(1.0)

    def test_never_queries_undemanded_nodes(self):
        scenarios = ScenarioSet([{0}])
        instance = SimpleTopKInstance(5, scenarios, budget=3)
        assert solve_direct(instance).chosen == {0}

    def test_zero_budget(self):
        scenarios = ScenarioSet([{0, 1}])
        instance = SimpleTopKInstance(2, scenarios, budget=0)
        solution = solve_direct(instance)
        assert solution.chosen == frozenset()
        assert solution.expected_misses == pytest.approx(2.0)

    def test_full_budget_no_misses(self):
        scenarios = ScenarioSet([{0, 1}, {2}])
        instance = SimpleTopKInstance(3, scenarios, budget=3)
        assert solve_direct(instance).expected_misses == 0.0


class TestExpectedMisses:
    def test_manual(self):
        scenarios = ScenarioSet([{0, 1}, {1, 2}])
        instance = SimpleTopKInstance(3, scenarios, budget=1)
        assert expected_misses(instance, {1}) == pytest.approx(1.0)
        assert expected_misses(instance, {0, 1, 2}) == 0.0


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=2, max_value=8),     # nodes
    st.integers(min_value=1, max_value=8),     # scenarios
    st.integers(min_value=1, max_value=4),     # k
    st.data(),
)
def test_theorem_1_reduction_matches_direct(n, m, k, data):
    """Solving through the budgeted stochastic Steiner tree yields the
    same expected miss count as the direct separable optimum."""
    k = min(k, n)
    scenarios = ScenarioSet(
        [
            frozenset(
                data.draw(
                    st.sets(
                        st.integers(min_value=0, max_value=n - 1),
                        min_size=k,
                        max_size=k,
                    )
                )
            )
            for __ in range(m)
        ]
    )
    budget = data.draw(st.integers(min_value=0, max_value=n))
    instance = SimpleTopKInstance(n, scenarios, budget)
    direct = solve_direct(instance)
    reduced = solve_via_steiner(instance)
    assert reduced.expected_misses == pytest.approx(
        direct.expected_misses, abs=1e-6
    )
    assert len(reduced.chosen) <= budget


class TestSampleComplexity:
    def test_heldout_quality_improves_with_samples(self):
        """More sampled scenarios -> better held-out decisions: the
        empirical content of §3.1's polynomial-sample bound."""
        rng = np.random.default_rng(0)
        n, k = 20, 3
        # a skewed distribution: some nodes are much likelier top-k
        weights = rng.dirichlet(np.ones(n) * 0.3)

        def draw():
            return set(
                rng.choice(n, size=k, replace=False, p=weights).tolist()
            )

        rows = sample_complexity_curve(
            n, k, budget=5, draw_scenario=draw,
            scenario_counts=(1, 5, 25, 100), rng=rng,
        )
        assert rows[0]["training_scenarios"] == 1
        # held-out misses shrink (weakly) from 1 sample to 100
        assert rows[-1]["heldout_misses"] <= rows[0]["heldout_misses"]
        # training loss is an optimistic estimate of held-out loss early
        assert rows[0]["train_misses"] <= rows[0]["heldout_misses"] + 1e-9
