"""Unit tests for scenario sets."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling.matrix import SampleMatrix
from repro.stochastic.scenarios import ScenarioSet


class TestScenarioSet:
    def test_requires_scenarios(self):
        with pytest.raises(SamplingError):
            ScenarioSet([])

    def test_from_sample_matrix(self):
        matrix = SampleMatrix(np.array([[5, 1, 9], [1, 8, 2.0]]), 1)
        scenarios = ScenarioSet.from_sample_matrix(matrix)
        assert scenarios.scenarios == [frozenset({2}), frozenset({1})]

    def test_probability_uniform(self):
        scenarios = ScenarioSet([{1}, {2}, {3, 4}])
        assert scenarios.probability == pytest.approx(1 / 3)
        assert len(scenarios) == 3

    def test_terminals_union(self):
        scenarios = ScenarioSet([{1, 2}, {2, 3}])
        assert scenarios.terminals() == {1, 2, 3}

    def test_demand_counts(self):
        scenarios = ScenarioSet([{0, 2}, {2}])
        assert scenarios.demand_counts(3).tolist() == [1, 0, 2]

    def test_subset(self):
        scenarios = ScenarioSet([{1}, {2}, {3}])
        assert len(scenarios.subset(2)) == 2
        with pytest.raises(SamplingError):
            scenarios.subset(0)
        with pytest.raises(SamplingError):
            scenarios.subset(4)

    def test_from_distribution(self):
        rng = np.random.default_rng(0)
        scenarios = ScenarioSet.from_distribution(
            5, lambda: {int(rng.integers(0, 3))}
        )
        assert len(scenarios) == 5
        with pytest.raises(SamplingError):
            ScenarioSet.from_distribution(0, lambda: {1})
