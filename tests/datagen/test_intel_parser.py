"""Tests for the real Intel Lab trace parser."""

import numpy as np
import pytest

from repro.datagen.intel_parser import (
    fill_missing,
    load_intel_trace,
    parse_line,
)
from repro.errors import TraceError

GOOD_LINE = "2004-02-28 00:59:16.02785 3 1 19.9884 37.0933 45.08 2.69964"


class TestParseLine:
    def test_good_line(self):
        parsed = parse_line(GOOD_LINE)
        assert parsed is not None
        assert parsed.epoch == 3
        assert parsed.mote == 1
        assert parsed.temperature == pytest.approx(19.9884)

    def test_truncated_line_skipped(self):
        assert parse_line("2004-02-28 00:59:16.02785 3 1") is None
        assert parse_line("") is None

    def test_garbage_fields_skipped(self):
        assert parse_line("date time x y z w v u") is None

    def test_glitch_temperatures_skipped(self):
        glitch = "2004-03-10 10:00:00.0 100 5 122.153 -4 11 2.03"
        assert parse_line(glitch) is None
        frozen = "2004-03-10 10:00:00.0 100 5 -38.4 -4 11 2.03"
        assert parse_line(frozen) is None

    def test_negative_ids_skipped(self):
        assert parse_line("d t -1 1 20.0 0 0 0") is None
        assert parse_line("d t 1 0 20.0 0 0 0") is None


def write_trace(tmp_path, lines):
    path = tmp_path / "data.txt"
    path.write_text("\n".join(lines) + "\n")
    return path


def make_lines(num_epochs=6, motes=(1, 2, 3), base=20.0, skip=()):
    lines = []
    for epoch in range(num_epochs):
        for mote in motes:
            if (epoch, mote) in skip:
                continue
            temp = base + mote + 0.1 * epoch
            lines.append(
                f"2004-02-28 00:{epoch:02d}:00.0 {epoch} {mote} {temp:.4f}"
                f" 37.0 45.0 2.7"
            )
    return lines


class TestLoadIntelTrace:
    def test_happy_path(self, tmp_path):
        path = write_trace(tmp_path, make_lines())
        trace, motes = load_intel_trace(path)
        assert motes == [1, 2, 3]
        assert trace.num_epochs == 6
        assert trace.num_nodes == 3
        assert trace.values[0, 0] == pytest.approx(21.0)
        assert trace.values[5, 2] == pytest.approx(23.5)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            load_intel_trace(tmp_path / "nope.txt")

    def test_empty_file(self, tmp_path):
        path = write_trace(tmp_path, ["garbage", "more garbage"])
        with pytest.raises(TraceError, match="no parsable"):
            load_intel_trace(path)

    def test_max_epochs(self, tmp_path):
        path = write_trace(tmp_path, make_lines(num_epochs=10))
        trace, __ = load_intel_trace(path, max_epochs=4)
        assert trace.num_epochs == 4

    def test_low_coverage_motes_dropped(self, tmp_path):
        # mote 3 reports only once in six epochs
        skip = {(e, 3) for e in range(1, 6)}
        path = write_trace(tmp_path, make_lines(skip=skip))
        trace, motes = load_intel_trace(path, min_coverage=0.5)
        assert motes == [1, 2]
        assert trace.num_nodes == 2

    def test_missing_values_repaired(self, tmp_path):
        path = write_trace(tmp_path, make_lines(skip={(2, 2)}))
        trace, motes = load_intel_trace(path, min_coverage=0.5)
        col = motes.index(2)
        # filled with the average of epochs 1 and 3 readings
        expected = (trace.values[1, col] + trace.values[3, col]) / 2
        assert trace.values[2, col] == pytest.approx(expected)
        assert np.isfinite(trace.values).all()

    def test_too_few_epochs(self, tmp_path):
        path = write_trace(tmp_path, make_lines(num_epochs=2))
        with pytest.raises(TraceError, match="3 epochs"):
            load_intel_trace(path)


class TestFillMissing:
    def test_interior_gap(self):
        values = np.array([[1.0], [np.nan], [3.0]])
        assert fill_missing(values)[1, 0] == pytest.approx(2.0)

    def test_boundary_gaps_copy_neighbour(self):
        values = np.array([[np.nan], [5.0], [np.nan]])
        filled = fill_missing(values)
        assert filled[0, 0] == 5.0
        assert filled[2, 0] == 5.0

    def test_run_of_gaps(self):
        values = np.array([[2.0], [np.nan], [np.nan], [6.0]])
        filled = fill_missing(values)
        assert filled[1, 0] == pytest.approx(4.0)
        assert filled[2, 0] == pytest.approx(4.0)

    def test_all_missing_column_rejected(self):
        with pytest.raises(TraceError, match="no readings"):
            fill_missing(np.array([[np.nan], [np.nan]]))

    def test_input_not_mutated(self):
        values = np.array([[1.0], [np.nan], [3.0]])
        fill_missing(values)
        assert np.isnan(values[1, 0])
