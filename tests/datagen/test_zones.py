"""Unit tests for the contention-zone workload."""

import numpy as np
import pytest

from repro.datagen.zones import ZoneWorkload
from repro.errors import TraceError


class TestZoneWorkload:
    def test_validation(self):
        with pytest.raises(TraceError):
            ZoneWorkload(num_zones=0)
        with pytest.raises(TraceError):
            ZoneWorkload(zone_mean=60.0, background_mean=50.0)
        with pytest.raises(TraceError):
            ZoneWorkload(exceed_probability=0.7)

    def test_structure(self):
        workload = ZoneWorkload(num_zones=3, k=4)
        members = workload.members()
        assert len(members) == 3
        assert all(len(zone) == 8 for zone in members)
        assert workload.topology.n == 1 + 3 * (workload.relay_hops + 8)
        member_set = {m for zone in members for m in zone}
        assert member_set.isdisjoint(workload.relays())

    def test_exceed_probability_calibration(self, rng):
        """Each zone node must exceed the background mean with the
        designed probability p = 1/(2z)."""
        workload = ZoneWorkload(num_zones=4, k=5)
        members = [m for zone in workload.members() for m in zone]
        trace = workload.trace(3000, rng)
        exceed = (trace.values[:, members] > workload.background_mean).mean()
        assert exceed == pytest.approx(1.0 / 8.0, abs=0.01)

    def test_expected_topk_supply(self, rng):
        """Across the network, ~k zone nodes exceed background per epoch."""
        k = 6
        workload = ZoneWorkload(num_zones=3, k=k)
        members = [m for zone in workload.members() for m in zone]
        trace = workload.trace(2000, rng)
        per_epoch = (trace.values[:, members] > workload.background_mean).sum(axis=1)
        assert per_epoch.mean() == pytest.approx(k, abs=0.5)

    def test_background_nodes_are_stable(self, rng):
        workload = ZoneWorkload(num_zones=2, k=3)
        relays = workload.relays()
        trace = workload.trace(500, rng)
        stds = trace.values[:, relays].std(axis=0)
        assert np.all(stds < 1.0)

    def test_single_zone_probability_clamped(self):
        workload = ZoneWorkload(num_zones=1, k=3)
        # p would be 0.5; the clamp keeps the variance finite
        assert np.isfinite(workload.fieldmodel.stds).all()
