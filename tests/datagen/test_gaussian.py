"""Unit tests for Gaussian field generators."""

import numpy as np
import pytest

from repro.datagen.gaussian import GaussianField, random_gaussian_field
from repro.errors import TraceError


class TestGaussianField:
    def test_shape_validation(self):
        with pytest.raises(TraceError):
            GaussianField(np.zeros(3), np.zeros(2))
        with pytest.raises(TraceError):
            GaussianField(np.zeros((2, 2)), np.zeros((2, 2)))
        with pytest.raises(TraceError):
            GaussianField(np.zeros(2), np.array([-1.0, 1.0]))

    def test_sampling_statistics(self, rng):
        field = GaussianField(np.array([10.0, -5.0]), np.array([1.0, 2.0]))
        trace = field.trace(4000, rng)
        means = trace.values.mean(axis=0)
        stds = trace.values.std(axis=0)
        assert means == pytest.approx([10.0, -5.0], abs=0.2)
        assert stds == pytest.approx([1.0, 2.0], abs=0.15)

    def test_sample_single_epoch(self, rng):
        field = GaussianField(np.zeros(3), np.ones(3))
        assert field.sample(rng).shape == (3,)

    def test_trace_requires_epochs(self, rng):
        field = GaussianField(np.zeros(2), np.ones(2))
        with pytest.raises(TraceError):
            field.trace(0, rng)

    def test_scaled_variance(self, rng):
        field = GaussianField(np.array([0.0]), np.array([2.0]))
        scaled = field.scaled_variance(4.0)
        assert scaled.stds[0] == pytest.approx(4.0)
        assert scaled.means[0] == 0.0
        with pytest.raises(TraceError):
            field.scaled_variance(-1.0)

    def test_random_field_ranges(self, rng):
        field = random_gaussian_field(
            100, rng, mean_range=(5.0, 6.0), std_range=(0.5, 0.6)
        )
        assert field.num_nodes == 100
        assert np.all((field.means >= 5.0) & (field.means <= 6.0))
        assert np.all((field.stds >= 0.5) & (field.stds <= 0.6))
        with pytest.raises(TraceError):
            random_gaussian_field(0, rng)
