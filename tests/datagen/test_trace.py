"""Unit tests for the trace container."""

import numpy as np
import pytest

from repro.datagen.trace import Trace
from repro.errors import TraceError


@pytest.fixture
def trace():
    return Trace(np.arange(12, dtype=float).reshape(4, 3))


class TestTrace:
    def test_shape_validation(self):
        with pytest.raises(TraceError):
            Trace(np.zeros(3))
        with pytest.raises(TraceError):
            Trace(np.zeros((0, 3)))

    def test_accessors(self, trace):
        assert trace.num_epochs == 4
        assert trace.num_nodes == 3
        assert len(trace) == 4
        assert trace.epoch(1).tolist() == [3.0, 4.0, 5.0]
        assert len(list(trace)) == 4

    def test_epoch_bounds(self, trace):
        with pytest.raises(TraceError, match="out of range"):
            trace.epoch(4)
        with pytest.raises(TraceError):
            trace.epoch(-1)

    def test_split(self, trace):
        train, evaluation = trace.split(3)
        assert train.num_epochs == 3
        assert evaluation.num_epochs == 1
        assert evaluation.epoch(0).tolist() == [9.0, 10.0, 11.0]

    def test_split_bounds(self, trace):
        with pytest.raises(TraceError):
            trace.split(0)
        with pytest.raises(TraceError):
            trace.split(4)

    def test_sample_matrix(self, trace):
        matrix = trace.sample_matrix(1)
        assert matrix.num_samples == 4
        assert matrix.ones(0) == frozenset({2})
