"""Unit tests for the Intel Lab surrogate."""

import numpy as np
import pytest

from repro.datagen.intel import (
    LAB_HEIGHT,
    LAB_WIDTH,
    NUM_MOTES,
    IntelLabSurrogate,
    intel_lab_network,
)
from repro.errors import TraceError
from repro.sampling.matrix import SampleMatrix


class TestNetwork:
    def test_54_motes_connected_with_hierarchy(self, rng):
        topology = intel_lab_network(rng)
        assert topology.n == NUM_MOTES
        # the short radio range must force real hierarchy (paper point)
        assert topology.height >= 5
        for x, y in topology.positions:
            assert 0 <= x <= LAB_WIDTH and 0 <= y <= LAB_HEIGHT

    def test_default_rng_reproducible(self):
        assert intel_lab_network().same_structure(intel_lab_network())


class TestSurrogate:
    def test_validation(self):
        with pytest.raises(TraceError):
            IntelLabSurrogate(missing_probability=1.0)
        with pytest.raises(TraceError):
            IntelLabSurrogate(epochs_per_day=1)

    def test_trace_shape(self, rng):
        topology = intel_lab_network(rng)
        trace = IntelLabSurrogate().generate(topology, 40, rng)
        assert trace.num_epochs == 40
        assert trace.num_nodes == NUM_MOTES
        with pytest.raises(TraceError):
            IntelLabSurrogate().generate(topology, 2, rng)

    def test_temperatures_are_plausible(self, rng):
        topology = intel_lab_network(rng)
        trace = IntelLabSurrogate().generate(topology, 200, rng)
        assert trace.values.min() > 5.0
        assert trace.values.max() < 40.0

    def test_topk_locations_are_predictable(self, rng):
        """The property that drives Figure 9: nodes frequently in the
        top k early in the trace stay frequent later."""
        topology = intel_lab_network(rng)
        trace = IntelLabSurrogate().generate(topology, 100, rng)
        first = SampleMatrix(trace.values[:50], 5).column_counts()
        second = SampleMatrix(trace.values[50:], 5).column_counts()
        top_first = set(np.argsort(-first)[:5])
        top_second = set(np.argsort(-second)[:5])
        assert len(top_first & top_second) >= 3

    def test_hotspots_are_hot(self, rng):
        topology = intel_lab_network(rng)
        surrogate = IntelLabSurrogate()
        field = surrogate.static_field(topology)
        hottest = int(np.argmax(field))
        x, y = topology.positions[hottest]
        # the hottest mote sits near one of the two warm corners
        near_server = x > LAB_WIDTH * 0.6 and y > LAB_HEIGHT * 0.5
        near_kitchen = x < LAB_WIDTH * 0.4 and y > LAB_HEIGHT * 0.5
        assert near_server or near_kitchen

    def test_missing_values_are_filled(self, rng):
        topology = intel_lab_network(rng)
        surrogate = IntelLabSurrogate(missing_probability=0.3)
        trace = surrogate.generate(topology, 50, rng)
        assert np.isfinite(trace.values).all()

    def test_zero_missing_probability(self, rng):
        topology = intel_lab_network(rng)
        a = IntelLabSurrogate(missing_probability=0.0).generate(
            topology, 10, np.random.default_rng(3)
        )
        b = IntelLabSurrogate(missing_probability=0.0).generate(
            topology, 10, np.random.default_rng(3)
        )
        np.testing.assert_array_equal(a.values, b.values)

    def test_diurnal_cycle_visible(self, rng):
        topology = intel_lab_network(rng)
        surrogate = IntelLabSurrogate(
            missing_probability=0.0, noise_std_c=0.01, epochs_per_day=24
        )
        trace = surrogate.generate(topology, 48, rng)
        node_series = trace.values[:, 10]
        # afternoon (3/4 through the day) warmer than dawn
        assert node_series[18] > node_series[6]
