"""Reproducibility: seeded experiments yield identical results.

Every figure in EXPERIMENTS.md is regenerated from fixed seeds; these
tests pin the property that makes those archives meaningful.
"""

import numpy as np

from repro.experiments import fig4_variance, sample_size
from repro.network.builder import random_topology
from repro.planners.base import PlanningContext
from repro.planners.lp_lf import LPLFPlanner
from repro.network.energy import EnergyModel
from repro.sampling.matrix import SampleMatrix


def test_experiment_runs_are_deterministic():
    kwargs = dict(n=25, k=4, num_samples=8, eval_epochs=5,
                  variances=(0.5, 4.0))
    assert fig4_variance.run(seed=11, **kwargs) == fig4_variance.run(
        seed=11, **kwargs
    )


def test_different_seeds_differ():
    kwargs = dict(n=25, k=4, num_samples=8, eval_epochs=5,
                  variances=(4.0,))
    a = fig4_variance.run(seed=11, **kwargs)
    b = fig4_variance.run(seed=12, **kwargs)
    assert a != b


def test_sample_size_deterministic():
    kwargs = dict(n=20, k=3, sizes=(2, 5), eval_epochs=4)
    assert sample_size.run(seed=7, **kwargs) == sample_size.run(
        seed=7, **kwargs
    )


def test_planner_is_deterministic():
    """Same context in, same plan out — no hidden randomness in the
    LP + rounding + repair + fill pipeline."""
    rng = np.random.default_rng(5)
    topology = random_topology(30, rng=rng)
    samples = SampleMatrix(rng.normal(10, 4, size=(12, 30)), 5)
    energy = EnergyModel.mica2()

    def build():
        context = PlanningContext(topology, energy, samples, 5, 25.0)
        return LPLFPlanner().plan(context)

    assert build() == build()
