"""Integration tests for the end-to-end query engine."""

import numpy as np
import pytest

from repro.datagen.gaussian import random_gaussian_field
from repro.errors import SamplingError
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.planners.greedy import GreedyPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.query.engine import EngineConfig, TopKEngine
from repro.sampling.collector import AdaptiveSampler


@pytest.fixture
def setting():
    rng = np.random.default_rng(9)
    topology = random_topology(30, rng=rng)
    field = random_gaussian_field(30, rng)
    return rng, topology, field


def make_engine(topology, planner=None, rng=None, budget_mj=40.0, **config):
    return TopKEngine(
        topology,
        EnergyModel.mica2(),
        k=4,
        planner=planner or LPNoLFPlanner(),
        config=EngineConfig(budget_mj=budget_mj, **config),
        rng=rng or np.random.default_rng(0),
    )


class TestEngineLifecycle:
    def test_query_requires_samples(self, setting):
        __, topology, __ = setting
        engine = make_engine(topology)
        with pytest.raises(SamplingError, match="feed_sample"):
            engine.query(np.zeros(topology.n))

    def test_feed_then_query(self, setting):
        rng, topology, field = setting
        engine = make_engine(topology)
        for __ in range(10):
            engine.feed_sample(field.sample(rng))
        result = engine.query(field.sample(rng))
        assert 0.0 <= result.accuracy <= 1.0
        assert result.energy_mj > 0
        assert len(result.returned) <= 4
        assert result.returned_nodes <= set(topology.nodes)

    def test_feed_sample_can_charge_energy(self, setting):
        rng, topology, field = setting
        engine = make_engine(topology)
        engine.feed_sample(field.sample(rng), charge_energy=True)
        assert engine.total_energy_mj > 0

    def test_plan_cached_between_queries(self, setting):
        rng, topology, field = setting
        engine = make_engine(topology)
        for __ in range(5):
            engine.feed_sample(field.sample(rng))
        first = engine.ensure_plan()
        engine.query(field.sample(rng))
        assert engine.ensure_plan() is first

    def test_new_sample_invalidates_plan(self, setting):
        rng, topology, field = setting
        engine = make_engine(topology)
        for __ in range(5):
            engine.feed_sample(field.sample(rng))
        engine.ensure_plan()
        engine.feed_sample(field.sample(rng))
        assert engine.plan is None

    def test_accuracy_reasonable_on_predictable_field(self, setting):
        rng, topology, __ = setting
        means = np.zeros(topology.n)
        means[[5, 11, 17, 23]] = 100.0  # fixed, obvious winners
        from repro.datagen.gaussian import GaussianField

        field = GaussianField(means, np.full(topology.n, 0.5))
        engine = make_engine(topology)
        for __ in range(8):
            engine.feed_sample(field.sample(rng))
        accuracies = [engine.query(field.sample(rng)).accuracy for __ in range(5)]
        assert np.mean(accuracies) == 1.0


class TestStepLoop:
    def test_explore_and_query_mix(self, setting):
        rng, topology, field = setting
        engine = make_engine(
            topology, rng=np.random.default_rng(1)
        )
        engine.sampler = AdaptiveSampler(
            base_rate=0.3, rng=np.random.default_rng(2)
        )
        actions = [engine.step(field.sample(rng)).action for __ in range(40)]
        assert "sample" in actions and "query" in actions
        # the first step must sample (empty window)
        assert actions[0] == "sample"

    def test_energy_accumulates(self, setting):
        rng, topology, field = setting
        engine = make_engine(topology)
        for __ in range(10):
            engine.step(field.sample(rng))
        assert engine.total_energy_mj > 0

    def test_replan_only_on_improvement(self, setting):
        rng, topology, field = setting
        engine = make_engine(topology, replan_every=1, replan_improvement=1e9)
        for __ in range(6):
            engine.feed_sample(field.sample(rng))
        engine.ensure_plan()
        plan = engine.plan
        # impossible improvement threshold: the plan must never change
        assert engine.maybe_replan() is False
        assert engine.plan is plan

    def test_maybe_replan_installs_when_absent(self, setting):
        rng, topology, field = setting
        engine = make_engine(topology)
        for __ in range(5):
            engine.feed_sample(field.sample(rng))
        assert engine.maybe_replan() is True
        assert engine.plan is not None

    def test_greedy_engine_works_too(self, setting):
        rng, topology, field = setting
        engine = make_engine(topology, planner=GreedyPlanner())
        for __ in range(6):
            engine.feed_sample(field.sample(rng))
        result = engine.query(field.sample(rng))
        assert result.energy_mj >= 0

    def test_track_truth_off(self, setting):
        rng, topology, field = setting
        engine = make_engine(topology, track_truth=False)
        for __ in range(5):
            engine.feed_sample(field.sample(rng))
        result = engine.query(field.sample(rng))
        assert np.isnan(result.accuracy)


class TestFailureStatistics:
    def test_observed_failures_update_model(self, setting):
        from repro.network.failures import LinkFailureModel

        rng, topology, field = setting
        failures = LinkFailureModel.uniform(
            topology, probability=0.5, reroute_extra_mj=1.0
        )
        engine = TopKEngine(
            topology,
            EnergyModel.mica2(),
            k=4,
            planner=LPNoLFPlanner(),
            config=EngineConfig(budget_mj=60.0),
            failures=failures,
            rng=np.random.default_rng(1),
        )
        for __ in range(6):
            engine.feed_sample(field.sample(rng))
        before = dict(failures.failure_probability)
        for __ in range(15):
            engine.query(field.sample(rng))
        # at least one observed edge's estimate moved
        assert any(
            failures.failure_probability[e] != before[e]
            for e in engine.plan.used_edges
            if e in before
        )

    def test_no_failure_model_is_noop(self, setting):
        rng, topology, field = setting
        engine = make_engine(topology)
        for __ in range(5):
            engine.feed_sample(field.sample(rng))
        engine.query(field.sample(rng))  # must not raise


class TestAudit:
    def test_audit_scores_against_proof_truth(self, setting):
        rng, topology, field = setting
        engine = make_engine(topology)
        for __ in range(8):
            engine.feed_sample(field.sample(rng))
        before = engine.total_energy_mj
        estimated, audit_energy = engine.audit(field.sample(rng))
        assert 0.0 <= estimated <= 1.0
        assert audit_energy > 0
        assert engine.total_energy_mj > before

    def test_bad_audit_boosts_sampling_rate(self, setting):
        rng, topology, field = setting
        engine = make_engine(topology, budget_mj=5.0)  # starved plan
        for __ in range(8):
            engine.feed_sample(field.sample(rng))
        base_rate = engine.sampler.rate
        estimated, __ = engine.audit(field.sample(rng))
        if estimated < engine.sampler.target_accuracy:
            assert engine.sampler.rate > base_rate

    def test_audit_returns_named_result(self, setting):
        from repro.query import AuditResult

        rng, topology, field = setting
        engine = make_engine(topology)
        for __ in range(8):
            engine.feed_sample(field.sample(rng))
        result = engine.audit(field.sample(rng))
        assert isinstance(result, AuditResult)
        assert 0.0 <= result.estimated_accuracy <= 1.0
        assert result.audit_energy_mj > 0
        # the node sets behind the score are exposed for inspection
        assert len(result.truth_nodes) == engine.k
        assert result.answer_nodes <= set(topology.nodes)
        overlap = len(result.truth_nodes & result.answer_nodes) / engine.k
        assert result.estimated_accuracy == pytest.approx(overlap)
        # legacy tuple unpacking still works during the deprecation cycle
        estimated, audit_energy = result
        assert estimated == result.estimated_accuracy
        assert audit_energy == result.audit_energy_mj


class TestApiSurface:
    def test_constructor_is_keyword_only_after_planner(self, setting):
        __, topology, __ = setting
        with pytest.raises(TypeError):
            TopKEngine(
                topology, EnergyModel.mica2(), 4, LPNoLFPlanner(),
                EngineConfig(),
            )

    def test_declined_replan_does_not_reset_clock(self, setting):
        rng, topology, field = setting
        engine = make_engine(topology, replan_every=3, replan_improvement=1e9)
        # exploit-only so every step is a query (zero the floor too,
        # or accuracy feedback restores the base exploration rate)
        engine.sampler.rate = 0.0
        engine.sampler.base_rate = 0.0
        for __ in range(6):
            engine.feed_sample(field.sample(rng))

        engine.step(field.sample(rng))  # installs initial plan, clock 0
        assert engine._queries_since_replan == 0
        engine.step(field.sample(rng))  # clock 1
        engine.step(field.sample(rng))  # clock 2
        engine.step(field.sample(rng))  # clock 3 -> replan declined
        assert engine._queries_since_replan == 3
        # the declined attempt must NOT have reset the clock: the very
        # next query re-attempts instead of waiting replan_every again
        engine.step(field.sample(rng))
        assert engine._queries_since_replan == 4

    def test_installed_replan_resets_clock(self, setting):
        rng, topology, field = setting
        engine = make_engine(topology)
        for __ in range(6):
            engine.feed_sample(field.sample(rng))
        engine._queries_since_replan = 7
        assert engine.maybe_replan() is True  # no plan yet -> installs
        assert engine._queries_since_replan == 0
