"""Unit tests for accuracy metrics."""

import pytest

from repro.errors import PlanError
from repro.query.accuracy import accuracy, recall_of_nodes


class TestRecall:
    def test_full_and_partial(self):
        assert recall_of_nodes({1, 2, 3}, {1, 2, 3}) == 1.0
        assert recall_of_nodes({1, 9}, {1, 2}) == 0.5
        assert recall_of_nodes(set(), {1, 2}) == 0.0

    def test_extra_nodes_do_not_help(self):
        assert recall_of_nodes({1, 2, 3, 4, 5}, {1, 2}) == 1.0

    def test_accepts_any_iterable(self):
        assert recall_of_nodes([1, 1, 2], {1, 2}) == 1.0

    def test_empty_truth_rejected(self):
        with pytest.raises(PlanError):
            recall_of_nodes({1}, set())


class TestAccuracy:
    def test_against_readings(self):
        readings = [10.0, 50.0, 30.0, 40.0]
        assert accuracy({1, 3}, readings, 2) == 1.0
        assert accuracy({1, 0}, readings, 2) == 0.5
        assert accuracy({0}, readings, 2) == 0.0

    def test_rejects_bad_k(self):
        with pytest.raises(PlanError):
            accuracy({0}, [1.0, 2.0], 0)
