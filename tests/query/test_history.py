"""Tests for the engine history recorder."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.query.history import EngineHistory
from repro.query.result import EpochOutcome, QueryResult


def query_outcome(epoch, accuracy, energy=2.0, replanned=False):
    return EpochOutcome(
        epoch=epoch,
        action="query",
        result=QueryResult(returned=[], energy_mj=energy, accuracy=accuracy),
        energy_mj=energy,
        notes={"replanned": replanned},
    )


def sample_outcome(epoch, energy=10.0):
    return EpochOutcome(epoch=epoch, action="sample", energy_mj=energy)


class TestRecording:
    def test_capacity_evicts_oldest(self):
        history = EngineHistory(capacity=3)
        for epoch in range(5):
            history.record(query_outcome(epoch, 0.5))
        assert len(history) == 3
        assert history.outcomes[0].epoch == 2

    def test_unbounded_by_default(self):
        history = EngineHistory()
        for epoch in range(100):
            history.record(sample_outcome(epoch))
        assert len(history) == 100


class TestSummary:
    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            EngineHistory().summary()

    def test_aggregates(self):
        history = EngineHistory()
        history.record(sample_outcome(1, energy=10.0))
        history.record(query_outcome(2, 0.8, energy=2.0))
        history.record(query_outcome(3, 0.6, energy=4.0, replanned=True))
        summary = history.summary()
        assert summary.epochs == 3
        assert summary.queries == 2
        assert summary.samples == 1
        assert summary.replans == 1
        assert summary.mean_accuracy == pytest.approx(0.7)
        assert summary.mean_query_energy_mj == pytest.approx(3.0)
        assert summary.total_energy_mj == pytest.approx(16.0)
        assert summary.sample_energy_fraction == pytest.approx(10 / 16)

    def test_windowed_summary(self):
        history = EngineHistory()
        history.record(query_outcome(1, 0.0))
        history.record(query_outcome(2, 1.0))
        assert history.summary(last=1).mean_accuracy == 1.0

    def test_nan_accuracies_skipped(self):
        history = EngineHistory()
        history.record(query_outcome(1, float("nan")))
        history.record(query_outcome(2, 0.5))
        assert history.summary().mean_accuracy == pytest.approx(0.5)


class TestDrift:
    def test_detects_sustained_drop(self):
        history = EngineHistory()
        for epoch in range(10):
            history.record(query_outcome(epoch, 0.9))
        for epoch in range(10, 20):
            history.record(query_outcome(epoch, 0.4))
        assert history.detect_drift(window=10, drop=0.2)

    def test_quiet_on_stable_accuracy(self):
        history = EngineHistory()
        for epoch in range(20):
            history.record(query_outcome(epoch, 0.85))
        assert not history.detect_drift(window=10)

    def test_needs_enough_data(self):
        history = EngineHistory()
        for epoch in range(5):
            history.record(query_outcome(epoch, 0.9))
        assert not history.detect_drift(window=10)

    def test_series_exposed(self):
        history = EngineHistory()
        history.record(sample_outcome(1))
        history.record(query_outcome(2, 0.75))
        assert history.accuracy_series() == [(2, 0.75)]


class TestEngineIntegration:
    def test_records_step_outcomes(self):
        from repro.datagen.gaussian import random_gaussian_field
        from repro.network.builder import random_topology
        from repro.network.energy import EnergyModel
        from repro.planners.lp_no_lf import LPNoLFPlanner
        from repro.query.engine import EngineConfig, TopKEngine

        rng = np.random.default_rng(0)
        topology = random_topology(20, rng=rng, radio_range=40.0)
        field = random_gaussian_field(20, rng)
        engine = TopKEngine(
            topology, EnergyModel.mica2(), k=3,
            planner=LPNoLFPlanner(),
            config=EngineConfig(budget_mj=30.0),
            rng=np.random.default_rng(1),
        )
        history = EngineHistory()
        for __ in range(12):
            history.record(engine.step(field.sample(rng)))
        summary = history.summary()
        assert summary.epochs == 12
        assert summary.queries + summary.samples == 12
        assert summary.total_energy_mj > 0
